// Package classify implements the communication-categorization algorithms
// the paper uses as its central metric (Section 3.2):
//
//   - cache misses are classified as cold-start, true-sharing,
//     false-sharing, eviction, or drop misses, following Dubois et al.
//     (ISCA'93) as extended by Bianchini & Kontothanassis (Ann. Simulation
//     Symp.'95); exclusive-request (upgrade) transactions are tracked as a
//     sixth communication-causing category;
//
//   - update messages are classified at the end of their lifetime as
//     true-sharing, false-sharing, proliferation, replacement,
//     termination, or drop updates.
//
// The classifier is driven by hooks from the protocol engine: global write
// visibility, per-processor references, copy acquisition/loss, and update
// delivery. It maintains per-(processor, block) shadow state keyed by
// block number, sized by the working set rather than the address space.
package classify

import "fmt"

// MissKind is a cache-miss category.
type MissKind int

const (
	MissCold MissKind = iota
	MissTrue
	MissFalse
	MissEviction
	MissDrop
	// MissUpgrade counts exclusive-request transactions: not strictly
	// misses, but communication-causing events reported alongside them.
	MissUpgrade
	NumMissKinds
)

func (k MissKind) String() string {
	switch k {
	case MissCold:
		return "cold"
	case MissTrue:
		return "true"
	case MissFalse:
		return "false"
	case MissEviction:
		return "eviction"
	case MissDrop:
		return "drop"
	case MissUpgrade:
		return "excl-req"
	}
	return fmt.Sprintf("MissKind(%d)", int(k))
}

// UpdateKind is an update-message category.
type UpdateKind int

const (
	UpdTrue UpdateKind = iota
	UpdFalse
	UpdProliferation
	UpdReplacement
	UpdTermination
	UpdDrop
	NumUpdateKinds
)

func (k UpdateKind) String() string {
	switch k {
	case UpdTrue:
		return "useful"
	case UpdFalse:
		return "false"
	case UpdProliferation:
		return "prolif"
	case UpdReplacement:
		return "repl"
	case UpdTermination:
		return "end"
	case UpdDrop:
		return "drop"
	}
	return fmt.Sprintf("UpdateKind(%d)", int(k))
}

// LossReason says why a processor's cached copy went away; it determines
// how the next miss on that block is classified.
type LossReason int

const (
	// LossInvalidation: a coherence invalidation (WI write by another proc).
	LossInvalidation LossReason = iota
	// LossEviction: direct-mapped conflict replacement.
	LossEviction
	// LossDrop: CU self-invalidation on reaching the update threshold.
	LossDrop
	// LossFlush: an explicit user-level block flush (the update-conscious
	// MCS lock issues these). The paper's taxonomy has no flush class;
	// a post-flush miss classifies as true/false sharing if another
	// processor wrote in the interim, else as an eviction-like miss.
	LossFlush
)

// MissCounts and UpdateCounts index counters by kind.
type MissCounts [NumMissKinds]uint64

// UpdateCounts indexes update-message counters by kind.
type UpdateCounts [NumUpdateKinds]uint64

// Total sums all categories.
func (m MissCounts) Total() uint64 {
	var s uint64
	for _, v := range m {
		s += v
	}
	return s
}

// TotalMisses sums only true misses (excludes upgrade transactions).
func (m MissCounts) TotalMisses() uint64 { return m.Total() - m[MissUpgrade] }

// Useful returns cold + true-sharing misses (the paper's useful classes).
func (m MissCounts) Useful() uint64 { return m[MissCold] + m[MissTrue] }

// Total sums all update categories.
func (u UpdateCounts) Total() uint64 {
	var s uint64
	for _, v := range u {
		s += v
	}
	return s
}

// Useful returns true-sharing updates (the only useful class).
func (u UpdateCounts) Useful() uint64 { return u[UpdTrue] }

// pendingUpdate tracks one delivered-but-unclassified update message.
// It is stored by value in procBlock.pending, so the per-update
// bookkeeping on the delivery hot path does not allocate.
type pendingUpdate struct {
	refdOther bool // receiver referenced another word in the block
}

// wordVersion tracks global write history of one word.
type wordVersion struct {
	ver    uint64
	writer int
}

// blockHistory is the global (cross-processor) write history of a block.
type blockHistory struct {
	words [16]wordVersion
}

// procBlock is per-(processor, block) shadow state.
type procBlock struct {
	everCached bool
	cached     bool
	lossReason LossReason
	// lostVer snapshots the global word versions at the moment the copy
	// was lost; a later miss compares against current versions.
	lostVer [16]uint64
	// pending maps word -> unclassified delivered update.
	pending map[int]pendingUpdate
}

// Classifier accumulates categorized communication for one simulation run.
type Classifier struct {
	procs   int
	history map[uint32]*blockHistory
	state   []map[uint32]*procBlock // per processor

	misses  MissCounts
	updates UpdateCounts
	// refs counts shared-data references; the paper computes the miss
	// rate solely with respect to shared references (Section 3.2).
	refs uint64
	// PerProcMisses supports debugging and per-construct analysis.
	perProcMisses []MissCounts
}

// New creates a classifier for the given processor count.
func New(procs int) *Classifier {
	if procs <= 0 {
		panic("classify: procs must be positive")
	}
	st := make([]map[uint32]*procBlock, procs)
	for i := range st {
		st[i] = make(map[uint32]*procBlock)
	}
	return &Classifier{
		procs:         procs,
		history:       make(map[uint32]*blockHistory),
		state:         st,
		perProcMisses: make([]MissCounts, procs),
	}
}

// Reset clears all accumulated classification state for machine reuse.
// Shadow-state map entries are kept and zeroed in place (the next run's
// working set is typically identical), which is order-safe: each entry's
// reset is independent of every other, so map iteration order cannot
// influence the result.
func (c *Classifier) Reset() {
	for _, h := range c.history {
		h.words = [16]wordVersion{}
	}
	for p := range c.state {
		for _, s := range c.state[p] {
			s.everCached = false
			s.cached = false
			s.lossReason = 0
			s.lostVer = [16]uint64{}
			clear(s.pending)
		}
	}
	c.misses = MissCounts{}
	c.updates = UpdateCounts{}
	c.refs = 0
	for i := range c.perProcMisses {
		c.perProcMisses[i] = MissCounts{}
	}
}

func (c *Classifier) hist(block uint32) *blockHistory {
	h, ok := c.history[block]
	if !ok {
		h = &blockHistory{}
		c.history[block] = h
	}
	return h
}

func (c *Classifier) pb(p int, block uint32) *procBlock {
	s, ok := c.state[p][block]
	if !ok {
		s = &procBlock{pending: make(map[int]pendingUpdate)}
		c.state[p][block] = s
	}
	return s
}

// GlobalWrite records that processor p's store to (block, word) became
// globally visible (WI: the write to the owned line; PU/CU: the home
// applying the write-through).
//
// Ordering contract: when a write causes invalidations (WI), the protocol
// must report LostCopy for each invalidated sharer *before* GlobalWrite,
// so that the causing write counts as "written since the copy was lost"
// and the sharers' re-miss classifies as true/false sharing.
func (c *Classifier) GlobalWrite(p int, block uint32, word int) {
	w := &c.hist(block).words[word]
	w.ver++
	w.writer = p
}

// Reference records that processor p touched (block, word) — load or
// store. It resolves pending updates: a pending update on the same word
// becomes a true-sharing (useful) update; pending updates on other words
// of the block learn that active false sharing is occurring.
func (c *Classifier) Reference(p int, block uint32, word int) {
	c.refs++
	s := c.pb(p, block)
	for w, pu := range s.pending {
		if w == word {
			c.updates[UpdTrue]++
			delete(s.pending, w)
		} else if !pu.refdOther {
			s.pending[w] = pendingUpdate{refdOther: true}
		}
	}
}

// Installed records that p acquired a cached copy of block.
func (c *Classifier) Installed(p int, block uint32) {
	s := c.pb(p, block)
	s.everCached = true
	s.cached = true
}

// LostCopy records that p's copy of block went away for the given reason.
// Pending updates are resolved here for replacement (and, for LossDrop,
// by DropDelivered below — LostCopy with LossDrop flushes any remaining
// other-word pendings as proliferation).
func (c *Classifier) LostCopy(p int, block uint32, reason LossReason) {
	s := c.pb(p, block)
	s.cached = false
	s.lossReason = reason
	h := c.hist(block)
	for w := range s.lostVer {
		s.lostVer[w] = h.words[w].ver
	}
	for w := range s.pending {
		switch reason {
		case LossEviction:
			c.updates[UpdReplacement]++
		default:
			// Invalidation under WI cannot coexist with pending updates;
			// drop/flush strand pendings, which are useless by definition.
			c.resolveUseless(s.pending[w])
		}
		delete(s.pending, w)
	}
}

// resolveUseless classifies a lifetime-ended useless update as false
// sharing if the receiver was actively referencing other words in the
// block, else as proliferation (the paper's convention).
func (c *Classifier) resolveUseless(pu pendingUpdate) {
	if pu.refdOther {
		c.updates[UpdFalse]++
	} else {
		c.updates[UpdProliferation]++
	}
}

// Miss classifies and counts a miss by p on (block, word). Call when the
// access has been determined to miss in the cache.
func (c *Classifier) Miss(p int, block uint32, word int) MissKind {
	s := c.pb(p, block)
	var kind MissKind
	switch {
	case !s.everCached:
		kind = MissCold
	case s.lossReason == LossEviction:
		kind = MissEviction
	case s.lossReason == LossDrop:
		kind = MissDrop
	default: // invalidation or flush: sharing-based classification
		h := c.hist(block)
		wv := h.words[word]
		wroteSince := wv.ver > s.lostVer[word]
		byOther := wv.writer != p
		if wroteSince && byOther {
			kind = MissTrue
		} else if s.lossReason == LossFlush && !c.anyOtherWrite(s, h, p) {
			// Nothing changed since our own flush: self-induced, count as
			// eviction-like rather than inventing sharing that isn't there.
			kind = MissEviction
		} else {
			kind = MissFalse
		}
	}
	c.misses[kind]++
	c.perProcMisses[p][kind]++
	return kind
}

// anyOtherWrite reports whether any word of the block was written by a
// processor other than p since s lost its copy.
func (c *Classifier) anyOtherWrite(s *procBlock, h *blockHistory, p int) bool {
	for w := range h.words {
		if h.words[w].ver > s.lostVer[w] && h.words[w].writer != p {
			return true
		}
	}
	return false
}

// Upgrade counts an exclusive-request (ownership upgrade) transaction.
func (c *Classifier) Upgrade(p int) {
	c.misses[MissUpgrade]++
	c.perProcMisses[p][MissUpgrade]++
}

// UpdateDelivered records that an update message for (block, word) written
// by writer arrived at p's cached copy. A previous pending update to the
// same word has now been overwritten and is classified useless.
func (c *Classifier) UpdateDelivered(p int, block uint32, word, writer int) {
	s := c.pb(p, block)
	if old, ok := s.pending[word]; ok {
		c.resolveUseless(old)
	}
	s.pending[word] = pendingUpdate{}
}

// DropDelivered records an update that, on arrival at p, pushed the CU
// counter past its threshold and invalidated the copy: the triggering
// update is a drop update; the caller must follow with
// LostCopy(p, block, LossDrop).
func (c *Classifier) DropDelivered(p int, block uint32, word int) {
	s := c.pb(p, block)
	if old, ok := s.pending[word]; ok {
		c.resolveUseless(old)
		delete(s.pending, word)
	}
	c.updates[UpdDrop]++
}

// StrayUpdate counts an update message that arrived at a node which no
// longer caches the block (its drop notice or replacement hint was still
// in flight). Such messages are useless by definition and are counted as
// proliferation updates.
func (c *Classifier) StrayUpdate() { c.updates[UpdProliferation]++ }

// Finish classifies all still-pending updates as termination updates.
// Call exactly once, at end of simulation.
func (c *Classifier) Finish() {
	for p := range c.state {
		for _, s := range c.state[p] {
			for w := range s.pending {
				c.updates[UpdTermination]++
				delete(s.pending, w)
			}
		}
	}
}

// Misses returns the accumulated miss counts.
func (c *Classifier) Misses() MissCounts { return c.misses }

// References returns the total shared-data references recorded.
func (c *Classifier) References() uint64 { return c.refs }

// MissRate returns misses per shared reference (the paper's metric).
// Zero references yields zero.
func (c *Classifier) MissRate() float64 {
	if c.refs == 0 {
		return 0
	}
	return float64(c.misses.TotalMisses()) / float64(c.refs)
}

// Updates returns the accumulated update-message counts.
func (c *Classifier) Updates() UpdateCounts { return c.updates }

// ProcMisses returns the per-processor miss counts.
func (c *Classifier) ProcMisses(p int) MissCounts { return c.perProcMisses[p] }

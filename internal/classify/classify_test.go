package classify

import (
	"testing"
	"testing/quick"
)

func TestKindStrings(t *testing.T) {
	if MissCold.String() != "cold" || MissUpgrade.String() != "excl-req" {
		t.Error("miss kind strings wrong")
	}
	if UpdTrue.String() != "useful" || UpdDrop.String() != "drop" {
		t.Error("update kind strings wrong")
	}
	if MissKind(99).String() == "" || UpdateKind(99).String() == "" {
		t.Error("unknown kinds must stringify")
	}
}

func TestColdMiss(t *testing.T) {
	c := New(2)
	if k := c.Miss(0, 10, 3); k != MissCold {
		t.Fatalf("first miss = %v, want cold", k)
	}
	if c.Misses()[MissCold] != 1 {
		t.Fatalf("counts %v", c.Misses())
	}
}

func TestTrueSharingMiss(t *testing.T) {
	c := New(2)
	// P0 caches block 5, reads word 2.
	c.Miss(0, 5, 2)
	c.Installed(0, 5)
	c.Reference(0, 5, 2)
	// P1 writes word 2: invalidation (LostCopy first, then GlobalWrite).
	c.LostCopy(0, 5, LossInvalidation)
	c.GlobalWrite(1, 5, 2)
	// P0 re-reads the written word: true sharing.
	if k := c.Miss(0, 5, 2); k != MissTrue {
		t.Fatalf("miss = %v, want true sharing", k)
	}
}

func TestFalseSharingMiss(t *testing.T) {
	c := New(2)
	c.Miss(0, 5, 2)
	c.Installed(0, 5)
	c.LostCopy(0, 5, LossInvalidation)
	c.GlobalWrite(1, 5, 9) // P1 wrote a *different* word
	if k := c.Miss(0, 5, 2); k != MissFalse {
		t.Fatalf("miss = %v, want false sharing", k)
	}
}

func TestEvictionMiss(t *testing.T) {
	c := New(1)
	c.Miss(0, 5, 0)
	c.Installed(0, 5)
	c.LostCopy(0, 5, LossEviction)
	if k := c.Miss(0, 5, 0); k != MissEviction {
		t.Fatalf("miss = %v, want eviction", k)
	}
}

func TestDropMiss(t *testing.T) {
	c := New(2)
	c.Miss(0, 5, 0)
	c.Installed(0, 5)
	c.LostCopy(0, 5, LossDrop)
	if k := c.Miss(0, 5, 0); k != MissDrop {
		t.Fatalf("miss = %v, want drop", k)
	}
}

func TestFlushMissWithInterveningWriteIsSharing(t *testing.T) {
	c := New(2)
	c.Miss(1, 7, 0)
	c.Installed(1, 7)
	c.LostCopy(1, 7, LossFlush)
	c.GlobalWrite(0, 7, 0)
	if k := c.Miss(1, 7, 0); k != MissTrue {
		t.Fatalf("miss = %v, want true sharing after flush+write", k)
	}
}

func TestFlushMissWithoutWriteIsEvictionLike(t *testing.T) {
	c := New(2)
	c.Miss(1, 7, 0)
	c.Installed(1, 7)
	c.LostCopy(1, 7, LossFlush)
	if k := c.Miss(1, 7, 0); k != MissEviction {
		t.Fatalf("miss = %v, want eviction-like after silent flush", k)
	}
}

func TestUpgradeCounted(t *testing.T) {
	c := New(2)
	c.Upgrade(1)
	m := c.Misses()
	if m[MissUpgrade] != 1 || m.TotalMisses() != 0 || m.Total() != 1 {
		t.Fatalf("counts %v", m)
	}
	if c.ProcMisses(1)[MissUpgrade] != 1 {
		t.Fatal("per-proc upgrade not counted")
	}
}

func TestUsefulUpdateOnReference(t *testing.T) {
	c := New(2)
	c.Installed(1, 3)
	c.UpdateDelivered(1, 3, 4, 0)
	c.Reference(1, 3, 4)
	u := c.Updates()
	if u[UpdTrue] != 1 || u.Total() != 1 {
		t.Fatalf("updates %v", u)
	}
}

func TestProliferationOnOverwrite(t *testing.T) {
	c := New(2)
	c.Installed(1, 3)
	c.UpdateDelivered(1, 3, 4, 0)
	c.UpdateDelivered(1, 3, 4, 0) // overwrites unreferenced update
	u := c.Updates()
	if u[UpdProliferation] != 1 {
		t.Fatalf("updates %v, want 1 proliferation", u)
	}
}

func TestFalseSharingUpdateOnOverwriteWithOtherWordActivity(t *testing.T) {
	c := New(2)
	c.Installed(1, 3)
	c.UpdateDelivered(1, 3, 4, 0)
	c.Reference(1, 3, 9) // receiver touches another word in the block
	c.UpdateDelivered(1, 3, 4, 0)
	u := c.Updates()
	if u[UpdFalse] != 1 {
		t.Fatalf("updates %v, want 1 false-sharing update", u)
	}
}

func TestReplacementUpdate(t *testing.T) {
	c := New(2)
	c.Installed(1, 3)
	c.UpdateDelivered(1, 3, 4, 0)
	c.LostCopy(1, 3, LossEviction)
	u := c.Updates()
	if u[UpdReplacement] != 1 {
		t.Fatalf("updates %v, want 1 replacement", u)
	}
}

func TestTerminationUpdate(t *testing.T) {
	c := New(2)
	c.Installed(1, 3)
	c.UpdateDelivered(1, 3, 4, 0)
	c.Finish()
	u := c.Updates()
	if u[UpdTermination] != 1 {
		t.Fatalf("updates %v, want 1 termination", u)
	}
}

func TestDropUpdateSequence(t *testing.T) {
	c := New(2)
	c.Installed(1, 3)
	// Three unreferenced updates, fourth triggers the drop.
	c.UpdateDelivered(1, 3, 4, 0)
	c.UpdateDelivered(1, 3, 4, 0)
	c.UpdateDelivered(1, 3, 4, 0)
	c.DropDelivered(1, 3, 4)
	c.LostCopy(1, 3, LossDrop)
	u := c.Updates()
	if u[UpdDrop] != 1 {
		t.Fatalf("updates %v, want 1 drop", u)
	}
	if u[UpdProliferation] != 3 {
		t.Fatalf("updates %v, want 3 proliferation", u)
	}
	if u.Total() != 4 {
		t.Fatalf("total %d, want 4", u.Total())
	}
}

func TestUpdateThenReferenceThenOverwriteCountsOnce(t *testing.T) {
	c := New(2)
	c.Installed(1, 3)
	c.UpdateDelivered(1, 3, 4, 0)
	c.Reference(1, 3, 4) // classified useful immediately
	c.UpdateDelivered(1, 3, 4, 0)
	c.Finish()
	u := c.Updates()
	if u[UpdTrue] != 1 || u[UpdTermination] != 1 || u.Total() != 2 {
		t.Fatalf("updates %v", u)
	}
}

func TestCountsHelpers(t *testing.T) {
	var m MissCounts
	m[MissCold] = 2
	m[MissTrue] = 3
	m[MissFalse] = 1
	m[MissUpgrade] = 4
	if m.Total() != 10 || m.TotalMisses() != 6 || m.Useful() != 5 {
		t.Fatalf("helpers: total=%d misses=%d useful=%d", m.Total(), m.TotalMisses(), m.Useful())
	}
	var u UpdateCounts
	u[UpdTrue] = 7
	u[UpdProliferation] = 3
	if u.Total() != 10 || u.Useful() != 7 {
		t.Fatalf("update helpers: %d %d", u.Total(), u.Useful())
	}
}

func TestInvalidProcsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New(0) did not panic")
		}
	}()
	New(0)
}

// Property: every delivered update is eventually classified in exactly one
// category once Finish runs, for arbitrary interleavings of deliveries,
// references, and evictions.
func TestPropertyUpdateConservation(t *testing.T) {
	type op struct {
		Kind byte // 0 deliver, 1 reference, 2 evict
		Word uint8
	}
	f := func(ops []op) bool {
		c := New(2)
		c.Installed(1, 0)
		delivered := uint64(0)
		drops := uint64(0)
		for _, o := range ops {
			w := int(o.Word % 16)
			switch o.Kind % 4 {
			case 0:
				c.UpdateDelivered(1, 0, w, 0)
				delivered++
			case 1:
				c.Reference(1, 0, w)
			case 2:
				c.LostCopy(1, 0, LossEviction)
				c.Installed(1, 0)
			case 3:
				c.DropDelivered(1, 0, w)
				drops++
				c.LostCopy(1, 0, LossDrop)
				c.Installed(1, 0)
			}
		}
		c.Finish()
		return c.Updates().Total() == delivered+drops
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: miss classification is total — every miss lands in exactly one
// of the five miss categories regardless of history.
func TestPropertyMissTotality(t *testing.T) {
	type step struct {
		Proc   uint8
		Block  uint8
		Word   uint8
		Action uint8
	}
	f := func(steps []step) bool {
		c := New(4)
		misses := uint64(0)
		for _, s := range steps {
			p := int(s.Proc % 4)
			b := uint32(s.Block % 8)
			w := int(s.Word % 16)
			switch s.Action % 5 {
			case 0:
				c.Miss(p, b, w)
				misses++
				c.Installed(p, b)
			case 1:
				c.Reference(p, b, w)
			case 2:
				c.GlobalWrite(p, b, w)
			case 3:
				c.LostCopy(p, b, LossReason(int(s.Word)%4))
			case 4:
				c.Upgrade(p)
			}
		}
		return c.Misses().TotalMisses() == misses
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestReferencesAndMissRate(t *testing.T) {
	c := New(2)
	if c.MissRate() != 0 {
		t.Fatal("empty classifier has nonzero miss rate")
	}
	// 1 miss, then 4 references.
	c.Miss(0, 1, 0)
	c.Installed(0, 1)
	for i := 0; i < 4; i++ {
		c.Reference(0, 1, 0)
	}
	if c.References() != 4 {
		t.Fatalf("references = %d", c.References())
	}
	if got := c.MissRate(); got != 0.25 {
		t.Fatalf("miss rate = %f, want 0.25", got)
	}
	// Upgrades do not count as misses for the rate.
	c.Upgrade(0)
	if got := c.MissRate(); got != 0.25 {
		t.Fatalf("miss rate after upgrade = %f, want 0.25", got)
	}
}

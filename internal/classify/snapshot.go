package classify

import "fmt"

// procBlockState is the flat copy of one per-(processor, block) shadow
// entry.
type procBlockState struct {
	everCached bool
	cached     bool
	lossReason LossReason
	lostVer    [16]uint64
	pending    map[int]pendingUpdate
}

// State is a deep snapshot of a classifier's accumulated state: the
// global write histories, the per-processor shadow copies, and every
// category counter. Maps are copied entry-by-entry, so a snapshot
// shares no mutable storage with its source.
type State struct {
	history map[uint32]blockHistory
	state   []map[uint32]procBlockState
	misses  MissCounts
	updates UpdateCounts
	refs    uint64
	perProc []MissCounts
}

// SnapshotState captures the classifier's accumulated state.
func (c *Classifier) SnapshotState() State {
	st := State{
		history: make(map[uint32]blockHistory, len(c.history)),
		state:   make([]map[uint32]procBlockState, len(c.state)),
		misses:  c.misses,
		updates: c.updates,
		refs:    c.refs,
		perProc: append([]MissCounts(nil), c.perProcMisses...),
	}
	for b, h := range c.history {
		st.history[b] = *h
	}
	for p := range c.state {
		m := make(map[uint32]procBlockState, len(c.state[p]))
		for b, pb := range c.state[p] {
			ps := procBlockState{
				everCached: pb.everCached,
				cached:     pb.cached,
				lossReason: pb.lossReason,
				lostVer:    pb.lostVer,
			}
			if len(pb.pending) > 0 {
				ps.pending = make(map[int]pendingUpdate, len(pb.pending))
				for w, pu := range pb.pending {
					ps.pending[w] = pu
				}
			}
			m[b] = ps
		}
		st.state[p] = m
	}
	return st
}

// RestoreState loads a snapshot into c, replacing all accumulated
// state. The target must have the snapshot source's processor count.
// Entries are refilled individually through the classifier's own
// accessors, so restoration is order-independent and deterministic.
func (c *Classifier) RestoreState(st State) {
	if len(st.state) != c.procs {
		panic(fmt.Sprintf("classify: RestoreState processor count mismatch (%d vs %d)", len(st.state), c.procs))
	}
	c.Reset()
	for b, h := range st.history {
		*c.hist(b) = h
	}
	for p := range st.state {
		for b, ps := range st.state[p] {
			pb := c.pb(p, b)
			pb.everCached = ps.everCached
			pb.cached = ps.cached
			pb.lossReason = ps.lossReason
			pb.lostVer = ps.lostVer
			for w, pu := range ps.pending {
				pb.pending[w] = pu
			}
		}
	}
	c.misses = st.misses
	c.updates = st.updates
	c.refs = st.refs
	copy(c.perProcMisses, st.perProc)
}

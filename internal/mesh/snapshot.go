package mesh

import (
	"fmt"

	"coherencesim/internal/sim"
)

// NetworkState is a deep copy of the mesh's restorable state: per-node
// network-interface occupancy, per-node flit counts, and the aggregate
// traffic stats. The topology (node count, grid width) is construction
// state and must match between snapshot source and restore target.
type NetworkState struct {
	outFree  []sim.Time
	inFree   []sim.Time
	outFlits []uint64
	inFlits  []uint64
	stats    Stats
}

// SnapshotState captures the network's restorable state.
func (nw *Network) SnapshotState() NetworkState {
	return NetworkState{
		outFree:  append([]sim.Time(nil), nw.outFree...),
		inFree:   append([]sim.Time(nil), nw.inFree...),
		outFlits: append([]uint64(nil), nw.outFlits...),
		inFlits:  append([]uint64(nil), nw.inFlits...),
		stats:    nw.stats,
	}
}

// RestoreState loads a snapshot into nw. The target must have the same
// node count as the snapshot's source.
func (nw *Network) RestoreState(st NetworkState) {
	if len(st.outFree) != nw.n {
		panic(fmt.Sprintf("mesh: RestoreState node count mismatch (%d vs %d)", len(st.outFree), nw.n))
	}
	copy(nw.outFree, st.outFree)
	copy(nw.inFree, st.inFree)
	copy(nw.outFlits, st.outFlits)
	copy(nw.inFlits, st.inFlits)
	nw.stats = st.stats
}

// Package mesh models the interconnection network of the simulated
// multiprocessor: a bi-directional wormhole-routed 2D mesh with
// dimension-ordered routing, a 16-bit-wide datapath, and a 2-cycle delay
// per switch, clocked at processor speed. Following the paper's
// methodology, network contention is modeled only at the source and
// destination of messages: each node's network interface serializes
// outgoing and incoming flits, while the interior of the mesh is treated
// as contention-free pipelined wormhole transmission.
package mesh

import (
	"fmt"

	"coherencesim/internal/metrics"
	"coherencesim/internal/sim"
)

// Config holds the network parameters. The zero value is not valid; use
// DefaultConfig as a starting point.
type Config struct {
	FlitBytes   int      // datapath width in bytes (paper: 2, i.e. 16 bits)
	SwitchDelay sim.Time // header delay per switch (paper: 2 cycles)
	LocalDelay  sim.Time // delivery delay when src == dst (NI loopback)
}

// DefaultConfig returns the paper's network parameters.
func DefaultConfig() Config {
	return Config{FlitBytes: 2, SwitchDelay: 2, LocalDelay: 1}
}

// Stats aggregates network traffic counters.
type Stats struct {
	Messages uint64 // messages delivered (excluding loopback)
	Loopback uint64 // src == dst deliveries
	Flits    uint64 // flits injected into the mesh
	HopSum   uint64 // total switch traversals (for mean-hops reporting)
}

// Network is the mesh. Nodes are numbered 0..N-1 and laid out row-major
// on a W x H grid with W*H >= N and W as close to sqrt(N) as possible.
type Network struct {
	e   *sim.Engine
	cfg Config
	n   int
	w   int // grid width

	outFree []sim.Time // per-node earliest time the output NI is free
	inFree  []sim.Time // per-node earliest time the input NI is free

	// Per-node flit counts, for hot-spot analysis of the contention the
	// model concentrates at sources and destinations.
	outFlits []uint64
	inFlits  []uint64

	stats Stats

	// Optional sampled observability counters (nil-safe handles).
	mMsgs  *metrics.Counter
	mFlits *metrics.Counter
}

// Instrument attaches sampled metric counters for delivered messages and
// injected flits, so the observability layer can export network traffic
// rates over simulated time. Loopback deliveries are excluded, matching
// Stats.Messages.
func (nw *Network) Instrument(msgs, flits *metrics.Counter) {
	nw.mMsgs, nw.mFlits = msgs, flits
}

// New builds an N-node mesh on engine e.
func New(e *sim.Engine, n int, cfg Config) *Network {
	if n <= 0 {
		panic(fmt.Sprintf("mesh: invalid node count %d", n))
	}
	if cfg.FlitBytes <= 0 {
		panic("mesh: FlitBytes must be positive")
	}
	w := 1
	for w*w < n {
		w++
	}
	return &Network{
		e:        e,
		cfg:      cfg,
		n:        n,
		w:        w,
		outFree:  make([]sim.Time, n),
		inFree:   make([]sim.Time, n),
		outFlits: make([]uint64, n),
		inFlits:  make([]uint64, n),
	}
}

// Reset clears NI occupancy and traffic counters for machine reuse and
// detaches instrumentation (a reusing machine re-attaches its own).
func (nw *Network) Reset() {
	clear(nw.outFree)
	clear(nw.inFree)
	clear(nw.outFlits)
	clear(nw.inFlits)
	nw.stats = Stats{}
	nw.mMsgs, nw.mFlits = nil, nil
}

// Nodes returns the number of nodes.
func (nw *Network) Nodes() int { return nw.n }

// Width returns the mesh grid width.
func (nw *Network) Width() int { return nw.w }

// Coord returns the (x, y) grid coordinate of node id.
func (nw *Network) Coord(id int) (x, y int) { return id % nw.w, id / nw.w }

// Hops returns the number of switch traversals between src and dst under
// dimension-ordered routing (the Manhattan distance, plus one for the
// injection switch when src != dst).
func (nw *Network) Hops(src, dst int) int {
	if src == dst {
		return 0
	}
	sx, sy := nw.Coord(src)
	dx, dy := nw.Coord(dst)
	return abs(sx-dx) + abs(sy-dy) + 1
}

// Flits returns the number of flits needed to carry a message of the given
// byte size (at least one flit).
func (nw *Network) Flits(bytes int) int {
	f := (bytes + nw.cfg.FlitBytes - 1) / nw.cfg.FlitBytes
	if f < 1 {
		f = 1
	}
	return f
}

// Send injects a message of the given size from src to dst and schedules
// deliver to run when the tail flit has drained into the destination NI.
// Timing: the source NI serializes the flits (contention with other
// outgoing messages), the header then pipelines through the mesh at
// SwitchDelay per hop, and the destination NI serializes arrival
// (contention with other incoming messages). The returned time is the
// delivery instant (when deliver runs) — the transaction tracer uses it
// to bound per-hop and fan-out spans without a second lookup.
func (nw *Network) Send(src, dst, bytes int, deliver func()) sim.Time {
	now := nw.e.Now()
	if src == dst {
		nw.stats.Loopback++
		nw.e.Schedule(nw.cfg.LocalDelay, deliver)
		return now + nw.cfg.LocalDelay
	}
	flits := sim.Time(nw.Flits(bytes))
	hops := sim.Time(nw.Hops(src, dst))

	start := max64(now, nw.outFree[src])
	nw.outFree[src] = start + flits

	headArrive := start + hops*nw.cfg.SwitchDelay
	inStart := max64(headArrive, nw.inFree[dst])
	done := inStart + flits
	nw.inFree[dst] = done

	nw.stats.Messages++
	nw.stats.Flits += uint64(flits)
	nw.stats.HopSum += uint64(hops)
	nw.outFlits[src] += uint64(flits)
	nw.inFlits[dst] += uint64(flits)
	if nw.mMsgs != nil {
		nw.mMsgs.Add(now, 1)
		nw.mFlits.Add(now, uint64(flits))
	}

	nw.e.At(done, deliver)
	return done
}

// NodeFlits returns node id's injected (out) and received (in) flit
// counts — the occupancies of the two interfaces where contention is
// modeled. Loopback deliveries do not count.
func (nw *Network) NodeFlits(id int) (out, in uint64) {
	return nw.outFlits[id], nw.inFlits[id]
}

// Hotspot returns the node with the highest combined interface flit
// count and that count.
func (nw *Network) Hotspot() (node int, flits uint64) {
	for i := 0; i < nw.n; i++ {
		if f := nw.outFlits[i] + nw.inFlits[i]; f > flits {
			node, flits = i, f
		}
	}
	return node, flits
}

// Stats returns a copy of the accumulated traffic counters.
func (nw *Network) Stats() Stats { return nw.stats }

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func max64(a, b sim.Time) sim.Time {
	if a > b {
		return a
	}
	return b
}

package mesh

import (
	"testing"
	"testing/quick"

	"coherencesim/internal/sim"
)

func TestGridDimensions(t *testing.T) {
	cases := []struct{ n, w int }{
		{1, 1}, {2, 2}, {4, 2}, {8, 3}, {16, 4}, {32, 6}, {64, 8},
	}
	for _, c := range cases {
		nw := New(sim.NewEngine(), c.n, DefaultConfig())
		if nw.Width() != c.w {
			t.Errorf("n=%d: width %d, want %d", c.n, nw.Width(), c.w)
		}
	}
}

func TestHopsSymmetricAndZeroOnSelf(t *testing.T) {
	nw := New(sim.NewEngine(), 32, DefaultConfig())
	for s := 0; s < 32; s++ {
		if nw.Hops(s, s) != 0 {
			t.Fatalf("Hops(%d,%d) = %d, want 0", s, s, nw.Hops(s, s))
		}
		for d := 0; d < 32; d++ {
			if nw.Hops(s, d) != nw.Hops(d, s) {
				t.Fatalf("asymmetric hops %d<->%d", s, d)
			}
		}
	}
}

func TestHopsManhattan(t *testing.T) {
	nw := New(sim.NewEngine(), 16, DefaultConfig()) // 4x4
	// node 0 = (0,0), node 15 = (3,3): distance 6, +1 injection switch.
	if got := nw.Hops(0, 15); got != 7 {
		t.Fatalf("Hops(0,15) = %d, want 7", got)
	}
	// adjacent nodes: 1 + 1
	if got := nw.Hops(0, 1); got != 2 {
		t.Fatalf("Hops(0,1) = %d, want 2", got)
	}
}

func TestFlitCount(t *testing.T) {
	nw := New(sim.NewEngine(), 4, DefaultConfig())
	cases := []struct{ bytes, flits int }{
		{0, 1}, {1, 1}, {2, 1}, {3, 2}, {8, 4}, {72, 36},
	}
	for _, c := range cases {
		if got := nw.Flits(c.bytes); got != c.flits {
			t.Errorf("Flits(%d) = %d, want %d", c.bytes, got, c.flits)
		}
	}
}

func TestUncontendedLatency(t *testing.T) {
	e := sim.NewEngine()
	nw := New(e, 16, DefaultConfig())
	var arrived sim.Time
	// 8-byte control message node 0 -> node 1: 4 flits, 2 hops.
	// latency = hops*switch + flits = 2*2 + 4 = 8.
	nw.Send(0, 1, 8, func() { arrived = e.Now() })
	e.Run()
	if arrived != 8 {
		t.Fatalf("arrival at %d, want 8", arrived)
	}
}

func TestLoopbackDelivery(t *testing.T) {
	e := sim.NewEngine()
	nw := New(e, 4, DefaultConfig())
	var arrived sim.Time
	nw.Send(2, 2, 72, func() { arrived = e.Now() })
	e.Run()
	if arrived != DefaultConfig().LocalDelay {
		t.Fatalf("loopback arrival at %d, want %d", arrived, DefaultConfig().LocalDelay)
	}
	if nw.Stats().Messages != 0 || nw.Stats().Loopback != 1 {
		t.Fatalf("stats = %+v, want loopback only", nw.Stats())
	}
}

func TestSourceSerialization(t *testing.T) {
	e := sim.NewEngine()
	nw := New(e, 16, DefaultConfig())
	var first, second sim.Time
	// Two back-to-back 8-byte messages from node 0 to different columns.
	// The second's flits cannot start until the first's 4 flits drain.
	nw.Send(0, 1, 8, func() { first = e.Now() })
	nw.Send(0, 2, 8, func() { second = e.Now() })
	e.Run()
	if first != 8 {
		t.Fatalf("first arrival %d, want 8", first)
	}
	// second: starts at 4, 3 hops -> head at 4+6=10, +4 flits = 14.
	if second != 14 {
		t.Fatalf("second arrival %d, want 14", second)
	}
}

func TestDestinationSerialization(t *testing.T) {
	e := sim.NewEngine()
	nw := New(e, 16, DefaultConfig())
	var a, b sim.Time
	// Node 1 and node 2 both send 8B to node 0 at t=0.
	// msg from 1: head 0+2*2=4, done 8. msg from 2: head 0+3*2=6, but input
	// NI busy until 8 -> done 12.
	nw.Send(1, 0, 8, func() { a = e.Now() })
	nw.Send(2, 0, 8, func() { b = e.Now() })
	e.Run()
	if a != 8 || b != 12 {
		t.Fatalf("arrivals a=%d b=%d, want 8, 12", a, b)
	}
}

func TestStatsAccumulate(t *testing.T) {
	e := sim.NewEngine()
	nw := New(e, 16, DefaultConfig())
	nw.Send(0, 1, 8, func() {})
	nw.Send(0, 15, 72, func() {})
	e.Run()
	st := nw.Stats()
	if st.Messages != 2 {
		t.Errorf("Messages = %d, want 2", st.Messages)
	}
	if st.Flits != 4+36 {
		t.Errorf("Flits = %d, want 40", st.Flits)
	}
	if st.HopSum != 2+7 {
		t.Errorf("HopSum = %d, want 9", st.HopSum)
	}
}

func TestInvalidConstruction(t *testing.T) {
	for _, f := range []func(){
		func() { New(sim.NewEngine(), 0, DefaultConfig()) },
		func() { New(sim.NewEngine(), 4, Config{FlitBytes: 0}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

// Property: delivery time is always >= send time + hops*switch + flits,
// and messages between the same pair preserve FIFO order.
func TestPropertyLatencyLowerBoundAndFIFO(t *testing.T) {
	f := func(sizes []uint8, srcRaw, dstRaw uint8) bool {
		if len(sizes) == 0 {
			return true
		}
		if len(sizes) > 20 {
			sizes = sizes[:20]
		}
		e := sim.NewEngine()
		nw := New(e, 32, DefaultConfig())
		src := int(srcRaw) % 32
		dst := int(dstRaw) % 32
		if src == dst {
			dst = (dst + 1) % 32
		}
		arrivals := make([]sim.Time, 0, len(sizes))
		lower := make([]sim.Time, 0, len(sizes))
		for _, sz := range sizes {
			bytes := int(sz)
			lb := sim.Time(nw.Hops(src, dst))*2 + sim.Time(nw.Flits(bytes))
			lower = append(lower, lb)
			nw.Send(src, dst, bytes, func() { arrivals = append(arrivals, e.Now()) })
		}
		e.Run()
		if len(arrivals) != len(sizes) {
			return false
		}
		for i, at := range arrivals {
			if at < lower[i] {
				return false
			}
			if i > 0 && at <= arrivals[i-1] {
				return false // FIFO between same pair, strictly increasing
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: messages between the same (src, dst) pair are delivered in
// send order even when interleaved with traffic to and from other nodes
// — the FIFO guarantee the coherence protocol's grant-before-release
// booking discipline relies on.
func TestPropertySamePairFIFOUnderCrossTraffic(t *testing.T) {
	f := func(sizes []uint8, noise []uint8) bool {
		if len(sizes) == 0 {
			return true
		}
		if len(sizes) > 15 {
			sizes = sizes[:15]
		}
		e := sim.NewEngine()
		nw := New(e, 16, DefaultConfig())
		var order []int
		for i, sz := range sizes {
			i := i
			nw.Send(3, 12, int(sz), func() { order = append(order, i) })
			// Interleave unrelated traffic touching both endpoints.
			if i < len(noise) {
				nw.Send(3, int(noise[i])%16, 8, func() {})
				nw.Send(int(noise[i])%16, 12, 8, func() {})
			}
		}
		e.Run()
		if len(order) != len(sizes) {
			return false
		}
		for i, got := range order {
			if got != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestNodeFlitsAndHotspot(t *testing.T) {
	e := sim.NewEngine()
	nw := New(e, 16, DefaultConfig())
	nw.Send(0, 5, 8, func() {})  // 4 flits
	nw.Send(0, 5, 72, func() {}) // 36 flits
	nw.Send(3, 0, 8, func() {})  // 4 flits into node 0
	nw.Send(2, 2, 72, func() {}) // loopback: not counted
	e.Run()
	out0, in0 := nw.NodeFlits(0)
	if out0 != 40 || in0 != 4 {
		t.Fatalf("node 0 flits out=%d in=%d, want 40, 4", out0, in0)
	}
	out5, in5 := nw.NodeFlits(5)
	if out5 != 0 || in5 != 40 {
		t.Fatalf("node 5 flits out=%d in=%d, want 0, 40", out5, in5)
	}
	if o, i := nw.NodeFlits(2); o != 0 || i != 0 {
		t.Fatalf("loopback counted: %d %d", o, i)
	}
	node, flits := nw.Hotspot()
	if node != 0 || flits != 44 {
		t.Fatalf("hotspot = node %d (%d flits), want node 0 (44)", node, flits)
	}
}

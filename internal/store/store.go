// Package store is coherenced's durable content-addressed result
// store: the on-disk layer under the in-memory result cache, so a
// completed job's document survives daemon restarts and identical
// specs replay byte-identical forever.
//
// Layout is deliberately boring — one file per key under a flat data
// directory, where the key is the canonical spec's content address (a
// hex SHA-256, so keys are filesystem-safe by construction). Each file
// carries a small fixed header (magic, version, status, body length,
// CRC-32 of the body) followed by the stored document verbatim.
//
// Durability discipline:
//
//   - Writes go to a same-directory temp file which is synced and then
//     atomically renamed over the final name. A crash mid-write leaves
//     only a temp file, never a half-written entry.
//   - Reads verify the header and CRC. A truncated or corrupt entry is
//     quarantined (renamed to *.corrupt) rather than served, and the
//     repair is counted.
//   - Opening the store scans the directory: leftover temp files are
//     removed, corrupt entries are quarantined, and the survivors are
//     indexed by size and modification time so eviction order survives
//     restarts.
//
// The store is bounded by total body bytes, not entry count — a few
// paper-scale sweep documents can outweigh thousands of quick ones —
// and evicts least recently used entries once over budget.
package store

import (
	"container/list"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// File format constants.
const (
	magic      = "CADS" // Content-Addressed Durable Store
	version    = 1
	headerSize = len(magic) + 1 + 1 + 2 + 8 + 4 // magic, version, status, reserved, length, crc

	tmpSuffix     = ".tmp"
	corruptSuffix = ".corrupt"
)

// Entry statuses. The store persists the terminal status alongside the
// body so the layering above it can keep its "only done entries count
// as result hits" rule without decoding the document.
const (
	statusDone     byte = 1
	statusFailed   byte = 2
	statusCanceled byte = 3
)

func statusByte(status string) (byte, bool) {
	switch status {
	case "done":
		return statusDone, true
	case "failed":
		return statusFailed, true
	case "canceled":
		return statusCanceled, true
	}
	return 0, false
}

func statusName(b byte) (string, bool) {
	switch b {
	case statusDone:
		return "done", true
	case statusFailed:
		return "failed", true
	case statusCanceled:
		return "canceled", true
	}
	return "", false
}

// Stats is a point-in-time snapshot of the store's lifetime counters
// and gauges, rendered by the /metrics endpoint.
type Stats struct {
	Entries   int    // live entries on disk
	Bytes     int64  // total stored body bytes
	Hits      uint64 // Get calls served from disk
	Misses    uint64 // Get calls with no (valid) entry
	Writes    uint64 // entries durably written
	Evictions uint64 // entries removed by the byte budget
	Repairs   uint64 // corrupt/truncated entries quarantined + temp files removed
}

// Store is the durable content-addressed result store. All methods are
// safe for concurrent use. A nil *Store ignores Put and misses Get, so
// callers can thread one unconditionally.
type Store struct {
	dir    string
	budget int64 // max total body bytes; <= 0 means unbounded

	mu      sync.Mutex
	ll      *list.List // front = most recently used
	entries map[string]*list.Element

	hits, misses, writes, evictions, repairs uint64
	bytes                                    int64
}

type entry struct {
	key  string
	size int64 // body bytes (excludes header)
}

// Open opens (creating if needed) the store rooted at dir, bounded to
// budget total body bytes (<= 0 means unbounded). The startup scan
// removes leftover temp files from interrupted writes, quarantines
// corrupt entries, and rebuilds the recency index from file
// modification times, oldest first.
func Open(dir string, budget int64) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: creating data dir: %w", err)
	}
	s := &Store{
		dir:     dir,
		budget:  budget,
		ll:      list.New(),
		entries: make(map[string]*list.Element),
	}
	if err := s.scan(); err != nil {
		return nil, err
	}
	return s, nil
}

// Dir returns the store's data directory.
func (s *Store) Dir() string {
	if s == nil {
		return ""
	}
	return s.dir
}

// scan rebuilds the in-memory index from the data directory, repairing
// the artifacts a crash can leave behind.
func (s *Store) scan() error {
	des, err := os.ReadDir(s.dir)
	if err != nil {
		return fmt.Errorf("store: scanning data dir: %w", err)
	}
	type found struct {
		key   string
		size  int64
		mtime int64
	}
	var live []found
	for _, de := range des {
		name := de.Name()
		if de.IsDir() || strings.HasSuffix(name, corruptSuffix) {
			continue
		}
		path := filepath.Join(s.dir, name)
		if strings.HasSuffix(name, tmpSuffix) {
			// A crash mid-write: the entry was never committed.
			os.Remove(path)
			s.repairs++
			continue
		}
		if !validKey(name) {
			continue // not ours; leave it alone
		}
		size, ok := s.verify(path)
		if !ok {
			s.quarantine(path)
			continue
		}
		info, err := de.Info()
		if err != nil {
			continue
		}
		live = append(live, found{key: name, size: size, mtime: info.ModTime().UnixNano()})
	}
	// Oldest first, so PushFront leaves the most recent at the front.
	sort.Slice(live, func(i, j int) bool {
		if live[i].mtime != live[j].mtime {
			return live[i].mtime < live[j].mtime
		}
		return live[i].key < live[j].key
	})
	for _, f := range live {
		s.entries[f.key] = s.ll.PushFront(&entry{key: f.key, size: f.size})
		s.bytes += f.size
	}
	s.evictOver()
	return nil
}

// validKey reports whether key is one the store could have written: a
// non-empty lowercase-hex-and-safe-punctuation name with no path
// structure. Content addresses are hex SHA-256 strings, so this is a
// guard against traversal, not a format.
func validKey(key string) bool {
	if key == "" || len(key) > 128 {
		return false
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		switch {
		case c >= 'a' && c <= 'z', c >= '0' && c <= '9', c == '-', c == '_':
		default:
			return false
		}
	}
	return true
}

func (s *Store) path(key string) string { return filepath.Join(s.dir, key) }

// header builds the fixed entry header for a body.
func header(status byte, body []byte) []byte {
	h := make([]byte, headerSize)
	copy(h, magic)
	h[4] = version
	h[5] = status
	// h[6:8] reserved
	binary.LittleEndian.PutUint64(h[8:], uint64(len(body)))
	binary.LittleEndian.PutUint32(h[16:], crc32.ChecksumIEEE(body))
	return h
}

// parseHeader validates a header and returns the declared status and
// body length.
func parseHeader(h []byte) (status byte, bodyLen uint64, ok bool) {
	if len(h) < headerSize || string(h[:4]) != magic || h[4] != version {
		return 0, 0, false
	}
	if _, ok := statusName(h[5]); !ok {
		return 0, 0, false
	}
	return h[5], binary.LittleEndian.Uint64(h[8:]), true
}

// readEntry reads and fully validates one entry file.
func readEntry(path string) (status byte, body []byte, err error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return 0, nil, err
	}
	if len(raw) < headerSize {
		return 0, nil, fmt.Errorf("truncated header (%d bytes)", len(raw))
	}
	status, bodyLen, ok := parseHeader(raw[:headerSize])
	if !ok {
		return 0, nil, fmt.Errorf("invalid header")
	}
	body = raw[headerSize:]
	if uint64(len(body)) != bodyLen {
		return 0, nil, fmt.Errorf("truncated body (%d of %d bytes)", len(body), bodyLen)
	}
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(raw[16:headerSize]) {
		return 0, nil, fmt.Errorf("checksum mismatch")
	}
	return status, body, nil
}

// verify validates an entry during the startup scan, returning its body
// size.
func (s *Store) verify(path string) (size int64, ok bool) {
	_, body, err := readEntry(path)
	if err != nil {
		return 0, false
	}
	return int64(len(body)), true
}

// quarantine sidelines a corrupt entry so it is never served again but
// stays on disk for forensics, and counts the repair.
func (s *Store) quarantine(path string) {
	if err := os.Rename(path, path+corruptSuffix); err != nil {
		os.Remove(path) // rename failed; fall back to removal
	}
	s.repairs++
}

// Get returns the stored document and terminal status for key,
// refreshing its recency. A corrupt entry is quarantined, counted, and
// reported as a miss.
func (s *Store) Get(key string) (body []byte, status string, ok bool) {
	if s == nil || !validKey(key) {
		return nil, "", false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.entries[key]
	if !ok {
		s.misses++
		return nil, "", false
	}
	st, body, err := readEntry(s.path(key))
	if err != nil {
		// The index said live but the bytes disagree (external
		// truncation/corruption): quarantine and forget it.
		s.quarantine(s.path(key))
		s.dropLocked(el)
		s.misses++
		return nil, "", false
	}
	name, _ := statusName(st)
	s.hits++
	s.ll.MoveToFront(el)
	return body, name, true
}

// Put durably stores (or replaces) the terminal document for key:
// write to a temp file in the same directory, sync, rename into place,
// then evict least recently used entries while over the byte budget.
func (s *Store) Put(key, status string, body []byte) error {
	if s == nil {
		return nil
	}
	if !validKey(key) {
		return fmt.Errorf("store: invalid key %q", key)
	}
	st, ok := statusByte(status)
	if !ok {
		return fmt.Errorf("store: unknown status %q", status)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	final := s.path(key)
	tmp := final + tmpSuffix
	if err := writeFileSync(tmp, header(st, body), body); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: writing %s: %w", key, err)
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: committing %s: %w", key, err)
	}
	if el, ok := s.entries[key]; ok {
		e := el.Value.(*entry)
		s.bytes += int64(len(body)) - e.size
		e.size = int64(len(body))
		s.ll.MoveToFront(el)
	} else {
		s.entries[key] = s.ll.PushFront(&entry{key: key, size: int64(len(body))})
		s.bytes += int64(len(body))
	}
	s.writes++
	s.evictOver()
	return nil
}

// writeFileSync writes header+body to path and syncs it to stable
// storage before returning.
func writeFileSync(path string, chunks ...[]byte) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	for _, c := range chunks {
		if _, err := f.Write(c); err != nil {
			f.Close()
			return err
		}
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// evictOver removes least recently used entries while the store is over
// its byte budget, always keeping at least one entry (a single result
// larger than the whole budget is still worth serving).
func (s *Store) evictOver() {
	if s.budget <= 0 {
		return
	}
	for s.bytes > s.budget && s.ll.Len() > 1 {
		last := s.ll.Back()
		os.Remove(s.path(last.Value.(*entry).key))
		s.dropLocked(last)
		s.evictions++
	}
}

// dropLocked removes an entry from the in-memory index (file handling
// is the caller's).
func (s *Store) dropLocked(el *list.Element) {
	e := el.Value.(*entry)
	s.ll.Remove(el)
	delete(s.entries, e.key)
	s.bytes -= e.size
}

// Len returns the number of live entries.
func (s *Store) Len() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ll.Len()
}

// Bytes returns the total stored body bytes.
func (s *Store) Bytes() int64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bytes
}

// Stats snapshots the store's counters and gauges.
func (s *Store) Stats() Stats {
	if s == nil {
		return Stats{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Entries:   s.ll.Len(),
		Bytes:     s.bytes,
		Hits:      s.hits,
		Misses:    s.misses,
		Writes:    s.writes,
		Evictions: s.evictions,
		Repairs:   s.repairs,
	}
}

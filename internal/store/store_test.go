package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func mustOpen(t *testing.T, dir string, budget int64) *Store {
	t.Helper()
	s, err := Open(dir, budget)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return s
}

func TestPutGetRoundTrip(t *testing.T) {
	s := mustOpen(t, t.TempDir(), 0)
	body := []byte(`{"id":"abc","status":"done"}`)
	if err := s.Put("abc", "done", body); err != nil {
		t.Fatal(err)
	}
	got, status, ok := s.Get("abc")
	if !ok || status != "done" || !bytes.Equal(got, body) {
		t.Fatalf("Get = %q/%q/%v, want body/done/true", got, status, ok)
	}
	st := s.Stats()
	if st.Entries != 1 || st.Bytes != int64(len(body)) || st.Writes != 1 || st.Hits != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestRestartHitIsByteIdentical(t *testing.T) {
	dir := t.TempDir()
	body := []byte(`{"id":"k1","status":"done","result":{"output":"table\n"}}`)
	s := mustOpen(t, dir, 0)
	if err := s.Put("k1", "done", body); err != nil {
		t.Fatal(err)
	}
	// A fresh store over the same directory — the restart — must serve
	// the exact stored bytes.
	s2 := mustOpen(t, dir, 0)
	got, status, ok := s2.Get("k1")
	if !ok || status != "done" {
		t.Fatalf("restart Get = %q/%v, want done/true", status, ok)
	}
	if !bytes.Equal(got, body) {
		t.Errorf("restart body differs:\n got %q\nwant %q", got, body)
	}
}

func TestCrashMidWriteLeavesNoEntry(t *testing.T) {
	dir := t.TempDir()
	// Simulate a crash mid-write: a temp file exists, the final name
	// does not.
	tmp := filepath.Join(dir, "deadbeef"+tmpSuffix)
	if err := os.WriteFile(tmp, []byte("partial garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	s := mustOpen(t, dir, 0)
	if _, _, ok := s.Get("deadbeef"); ok {
		t.Error("half-written entry served")
	}
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Error("temp file survived the startup scan")
	}
	if st := s.Stats(); st.Repairs != 1 {
		t.Errorf("repairs = %d, want 1", st.Repairs)
	}
}

func TestCorruptEntryQuarantinedAtScan(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, 0)
	if err := s.Put("feed01", "done", []byte("good body")); err != nil {
		t.Fatal(err)
	}
	// Flip one body byte on disk behind the store's back.
	path := filepath.Join(dir, "feed01")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	s2 := mustOpen(t, dir, 0)
	if _, _, ok := s2.Get("feed01"); ok {
		t.Error("corrupt entry served after restart scan")
	}
	if _, err := os.Stat(path + corruptSuffix); err != nil {
		t.Errorf("corrupt entry not quarantined: %v", err)
	}
	if st := s2.Stats(); st.Repairs != 1 {
		t.Errorf("repairs = %d, want 1", st.Repairs)
	}
}

func TestTruncatedEntryQuarantinedAtRead(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, 0)
	if err := s.Put("feed02", "done", []byte("a body that will be cut short")); err != nil {
		t.Fatal(err)
	}
	// Truncate while the store is live: the index says present, the
	// bytes disagree. Get must quarantine, not serve.
	path := filepath.Join(dir, "feed02")
	if err := os.Truncate(path, int64(headerSize+3)); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := s.Get("feed02"); ok {
		t.Error("truncated entry served")
	}
	if _, err := os.Stat(path + corruptSuffix); err != nil {
		t.Errorf("truncated entry not quarantined: %v", err)
	}
	if _, _, ok := s.Get("feed02"); ok {
		t.Error("quarantined entry resurrected")
	}
	if st := s.Stats(); st.Repairs != 1 || st.Entries != 0 {
		t.Errorf("stats = %+v, want 1 repair / 0 entries", st)
	}
}

func TestByteBudgetEvictsLRU(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, 100)
	body := bytes.Repeat([]byte("x"), 40)
	for i := 0; i < 2; i++ {
		if err := s.Put(fmt.Sprintf("k%d", i), "done", body); err != nil {
			t.Fatal(err)
		}
	}
	// Touch k0 so k1 is least recently used.
	if _, _, ok := s.Get("k0"); !ok {
		t.Fatal("k0 missing")
	}
	// 120 > 100: one eviction, and it must be k1.
	if err := s.Put("k2", "done", body); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := s.Get("k1"); ok {
		t.Error("k1 survived, want LRU evicted")
	}
	for _, k := range []string{"k0", "k2"} {
		if _, _, ok := s.Get(k); !ok {
			t.Errorf("%s evicted, want kept", k)
		}
	}
	if _, err := os.Stat(filepath.Join(dir, "k1")); !os.IsNotExist(err) {
		t.Error("evicted entry file still on disk")
	}
	st := s.Stats()
	if st.Evictions != 1 || st.Bytes != 80 || st.Entries != 2 {
		t.Errorf("stats = %+v, want 1 eviction, 80 bytes, 2 entries", st)
	}
}

func TestBudgetKeepsOversizeSingleton(t *testing.T) {
	s := mustOpen(t, t.TempDir(), 10)
	if err := s.Put("big", "done", bytes.Repeat([]byte("y"), 64)); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := s.Get("big"); !ok {
		t.Error("an entry larger than the whole budget must still be kept")
	}
}

func TestScanRecencyFromModTimes(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, 0)
	body := bytes.Repeat([]byte("z"), 30)
	for _, k := range []string{"old", "mid", "new"} {
		if err := s.Put(k, "done", body); err != nil {
			t.Fatal(err)
		}
	}
	// Make mtimes unambiguous regardless of filesystem resolution.
	base := time.Now().Add(-time.Hour)
	for i, k := range []string{"old", "mid", "new"} {
		ts := base.Add(time.Duration(i) * time.Minute)
		if err := os.Chtimes(filepath.Join(dir, k), ts, ts); err != nil {
			t.Fatal(err)
		}
	}
	// Reopen with a budget that forces one eviction on the next Put:
	// the oldest mtime must go first.
	s2 := mustOpen(t, dir, 100)
	if s2.Len() != 3 {
		t.Fatalf("len = %d, want 3", s2.Len())
	}
	if err := s2.Put("k4", "done", body); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := s2.Get("old"); ok {
		t.Error("oldest entry survived, want evicted first after restart")
	}
	if _, _, ok := s2.Get("mid"); !ok {
		t.Error("mid evicted, want kept")
	}
}

func TestReplaceAdjustsBytes(t *testing.T) {
	s := mustOpen(t, t.TempDir(), 0)
	if err := s.Put("k", "failed", bytes.Repeat([]byte("a"), 50)); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("k", "done", bytes.Repeat([]byte("b"), 10)); err != nil {
		t.Fatal(err)
	}
	if got := s.Bytes(); got != 10 {
		t.Errorf("bytes = %d, want 10", got)
	}
	_, status, ok := s.Get("k")
	if !ok || status != "done" {
		t.Errorf("Get status = %q/%v, want done/true", status, ok)
	}
}

func TestInvalidKeysRejected(t *testing.T) {
	s := mustOpen(t, t.TempDir(), 0)
	for _, k := range []string{"", "../escape", "UPPER", "a/b", "a.b"} {
		if err := s.Put(k, "done", nil); err == nil {
			t.Errorf("Put(%q) accepted, want rejected", k)
		}
		if _, _, ok := s.Get(k); ok {
			t.Errorf("Get(%q) hit, want miss", k)
		}
	}
	if err := s.Put("abc", "bogus-status", nil); err == nil {
		t.Error("unknown status accepted")
	}
}

func TestNilStoreIsInert(t *testing.T) {
	var s *Store
	if err := s.Put("k", "done", []byte("x")); err != nil {
		t.Errorf("nil Put: %v", err)
	}
	if _, _, ok := s.Get("k"); ok {
		t.Error("nil Get hit")
	}
	if s.Len() != 0 || s.Bytes() != 0 || s.Stats() != (Stats{}) || s.Dir() != "" {
		t.Error("nil accessors not zero")
	}
}

package mc

import (
	"testing"

	"coherencesim/internal/proto"
)

// TestConformanceBulk replays >= 1000 generated schedules per protocol
// through both the model and the live proto.System, comparing stable
// states after every operation (the ISSUE acceptance bar).
func TestConformanceBulk(t *testing.T) {
	target := 1100
	if testing.Short() {
		target = 120
	}
	for _, p := range allProtocols() {
		p := p
		t.Run(p.String(), func(t *testing.T) {
			t.Parallel()
			cfg := DefaultConfig(p)
			cfg.Blocks = 2
			cfg.OpsPerProc = MaxOps // schedules are up to 3 ops on one proc
			scheds := GenerateSchedules(cfg, target)
			if len(scheds) < target {
				t.Fatalf("generated only %d schedules, want >= %d", len(scheds), target)
			}
			n, err := RunConformance(cfg, scheds)
			if err != nil {
				t.Fatalf("after %d conforming schedules: %v", n, err)
			}
			t.Logf("%v: %d schedules conform", p, n)
		})
	}
}

// TestConformanceCUThreshold exercises the CU drop edge under a low
// threshold so counter-driven self-invalidation is cross-checked too.
func TestConformanceCUThreshold(t *testing.T) {
	cfg := DefaultConfig(proto.CU)
	cfg.CUThreshold = 2
	cfg.OpsPerProc = MaxOps
	scheds := GenerateSchedules(cfg, 400)
	n, err := RunConformance(cfg, scheds)
	if err != nil {
		t.Fatalf("after %d conforming schedules: %v", n, err)
	}
}

// Satellite: table-driven model-vs-implementation conformance on tiny
// hand-written schedules, one per protocol mechanism, independent of
// the generated sweep above.
func TestConformanceHandWritten(t *testing.T) {
	read := func(p, b, w int) ScheduleOp { return ScheduleOp{P: p, Kind: OpRead, Block: b, Word: w} }
	write := func(p, b, w int) ScheduleOp { return ScheduleOp{P: p, Kind: OpWrite, Block: b, Word: w} }
	atomic := func(p, b, w int) ScheduleOp { return ScheduleOp{P: p, Kind: OpAtomic, Block: b, Word: w} }
	flush := func(p, b int) ScheduleOp { return ScheduleOp{P: p, Kind: OpFlush, Block: b} }

	cases := []struct {
		name     string
		protocol proto.Protocol
		procs    int
		cuThresh uint8
		sched    Schedule
	}{
		// WI invalidation fan-out: three sharers, then a write that must
		// invalidate two and grant exclusivity.
		{"wi-invalidation-fanout", proto.WI, 3, 4,
			Schedule{read(0, 0, 0), read(1, 0, 0), read(2, 0, 0), write(0, 0, 0), read(1, 0, 0)}},
		// WI upgrade after dirty write-back via flush.
		{"wi-flush-writeback", proto.WI, 2, 4,
			Schedule{write(0, 0, 0), flush(0, 0), read(1, 0, 0), write(1, 0, 0)}},
		// PU multi-sharer update: everyone re-reads the written value.
		{"pu-multisharer-update", proto.PU, 3, 4,
			Schedule{read(0, 0, 0), read(1, 0, 0), read(2, 0, 0), write(0, 0, 0), read(1, 0, 0), read(2, 0, 0)}},
		// PU private-block retention: sole sharer writes, retains, then a
		// second node's read demotes the retained copy.
		{"pu-retention-demote", proto.PU, 2, 4,
			Schedule{read(0, 0, 0), write(0, 0, 0), write(0, 0, 0), read(1, 0, 0)}},
		// CU threshold flip: threshold 2, two remote writes drop the copy.
		{"cu-threshold-flip", proto.CU, 2, 2,
			Schedule{read(0, 0, 0), read(1, 0, 0), write(0, 0, 0), write(0, 0, 0), read(1, 0, 0)}},
		// CU counter reset by local reference keeps the copy alive.
		{"cu-counter-reset", proto.CU, 2, 2,
			Schedule{read(0, 0, 0), read(1, 0, 0), write(0, 0, 0), read(1, 0, 0), write(0, 0, 0), read(1, 0, 0)}},
		// Atomics: home-executed under update protocols, cache-executed
		// under WI.
		{"wi-atomic-chain", proto.WI, 2, 4,
			Schedule{atomic(0, 0, 0), atomic(1, 0, 0), read(0, 0, 0)}},
		{"cu-atomic-chain", proto.CU, 2, 4,
			Schedule{read(1, 0, 0), atomic(0, 0, 0), atomic(1, 0, 0), read(0, 0, 0)}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			cfg := DefaultConfig(tc.protocol)
			cfg.Procs = tc.procs
			cfg.CUThreshold = tc.cuThresh
			cfg.OpsPerProc = MaxOps
			if _, err := RunConformance(cfg, []Schedule{tc.sched}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestModelScheduleExpectations pins concrete model outcomes for the
// hand-written mechanisms (so the table above cannot silently degrade
// into comparing two wrong answers).
func TestModelScheduleExpectations(t *testing.T) {
	// CU threshold flip: after two remote writes at threshold 2, p1's
	// copy must be gone and the home must have dropped it from the
	// sharer set.
	cfg := DefaultConfig(proto.CU)
	cfg.CUThreshold = 2
	cfg.OpsPerProc = MaxOps
	st, _, err := runModelSchedule(cfg, Schedule{
		{P: 0, Kind: OpRead}, {P: 1, Kind: OpRead},
		{P: 0, Kind: OpWrite}, {P: 0, Kind: OpWrite},
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.lines[1][0].state != lInvalid {
		t.Error("CU copy survived the threshold")
	}
	if st.dirs[0].has(1) {
		t.Error("home still lists the dropped sharer")
	}

	// PU retention: sole sharer's second write runs locally (Exclusive,
	// dirty) with the directory recording ownership.
	cfg = DefaultConfig(proto.PU)
	cfg.OpsPerProc = MaxOps
	st, _, err = runModelSchedule(cfg, Schedule{
		{P: 0, Kind: OpRead}, {P: 0, Kind: OpWrite}, {P: 0, Kind: OpWrite},
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.lines[0][0].state != lExclusive || st.dirs[0].state != dOwned || st.dirs[0].owner != 0 {
		t.Errorf("PU retention did not take: line=%v dir=%v owner=%d",
			st.lines[0][0].state, st.dirs[0].state, st.dirs[0].owner)
	}

	// WI invalidation: a write invalidates the other sharer.
	cfg = DefaultConfig(proto.WI)
	cfg.OpsPerProc = MaxOps
	st, _, err = runModelSchedule(cfg, Schedule{
		{P: 0, Kind: OpRead}, {P: 1, Kind: OpRead}, {P: 0, Kind: OpWrite},
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.lines[1][0].state != lInvalid {
		t.Error("WI write left the other sharer's copy valid")
	}
	if st.lines[0][0].state != lExclusive || !st.lines[0][0].dirty {
		t.Error("WI writer did not end exclusive+dirty")
	}
}

package mc

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"

	"coherencesim/internal/proto"
	"coherencesim/internal/trace"
)

// Trace is a compact, replayable counterexample: the configuration plus
// the exact action schedule from the initial state to the violation.
// It serializes as JSON so a failing coherencemc run can be committed
// verbatim as a go test regression fixture (see TestReplay* in
// trace_test.go for the idiom). The header is the shared trace.Envelope
// (schema, kind "counterexample", protocol) every simulator-emitted
// trace document carries; pre-envelope documents (schema 0, no kind)
// are still accepted by ParseTrace.
type Trace struct {
	trace.Envelope
	Procs            int      `json:"procs"`
	Blocks           int      `json:"blocks"`
	Words            int      `json:"words"`
	OpsPerProc       int      `json:"ops_per_proc"`
	CUThreshold      uint8    `json:"cu_threshold"`
	DisableRetention bool     `json:"disable_retention,omitempty"`
	OpSet            []string `json:"op_set,omitempty"`
	Faults           Faults   `json:"faults,omitempty"`
	Actions          []string `json:"actions"`
}

// encodeAction renders one action in the trace's compact text form:
// "p2 write b1.w0" for issues, "3>1" for deliveries.
func encodeAction(a action) string {
	if a.issue {
		return fmt.Sprintf("p%d %s b%d.w%d", a.p, a.kind, a.block, a.word)
	}
	return fmt.Sprintf("%d>%d", a.src, a.dst)
}

// parseAction inverts encodeAction.
func parseAction(s string) (action, error) {
	var a action
	if strings.HasPrefix(s, "p") {
		var kind string
		if _, err := fmt.Sscanf(s, "p%d %s b%d.w%d", &a.p, &kind, &a.block, &a.word); err != nil {
			return a, fmt.Errorf("mc: bad issue action %q: %v", s, err)
		}
		a.issue = true
		switch kind {
		case "read":
			a.kind = OpRead
		case "write":
			a.kind = OpWrite
		case "atomic":
			a.kind = OpAtomic
		case "flush":
			a.kind = OpFlush
		default:
			return a, fmt.Errorf("mc: bad op kind in action %q", s)
		}
		return a, nil
	}
	if _, err := fmt.Sscanf(s, "%d>%d", &a.src, &a.dst); err != nil {
		return a, fmt.Errorf("mc: bad deliver action %q: %v", s, err)
	}
	return a, nil
}

// parseProtocol maps a trace's protocol name back to the proto constant.
func parseProtocol(s string) (proto.Protocol, error) {
	switch s {
	case "WI":
		return proto.WI, nil
	case "PU":
		return proto.PU, nil
	case "CU":
		return proto.CU, nil
	}
	return 0, fmt.Errorf("mc: unknown protocol %q", s)
}

// Config reconstructs the exploration configuration a trace was
// recorded under.
func (t *Trace) ConfigOf() (Config, error) {
	p, err := parseProtocol(t.Protocol)
	if err != nil {
		return Config{}, err
	}
	cfg := Config{
		Protocol:         p,
		Procs:            t.Procs,
		Blocks:           t.Blocks,
		Words:            t.Words,
		OpsPerProc:       t.OpsPerProc,
		CUThreshold:      t.CUThreshold,
		DisableRetention: t.DisableRetention,
		Faults:           t.Faults,
	}
	for _, name := range t.OpSet {
		switch name {
		case "read":
			cfg.OpSet = append(cfg.OpSet, OpRead)
		case "write":
			cfg.OpSet = append(cfg.OpSet, OpWrite)
		case "atomic":
			cfg.OpSet = append(cfg.OpSet, OpAtomic)
		case "flush":
			cfg.OpSet = append(cfg.OpSet, OpFlush)
		default:
			return Config{}, fmt.Errorf("mc: unknown op kind %q in trace", name)
		}
	}
	if cfg.CUThreshold == 0 {
		cfg.CUThreshold = 4
	}
	return cfg, cfg.Validate()
}

// LoadTrace reads a JSON trace from disk.
func LoadTrace(path string) (*Trace, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return ParseTrace(raw)
}

// ParseTrace decodes a JSON trace. Schema 0 (documents written before
// the shared envelope existed) is normalized to the current version.
func ParseTrace(raw []byte) (*Trace, error) {
	var t Trace
	if err := json.Unmarshal(raw, &t); err != nil {
		return nil, fmt.Errorf("mc: bad trace: %v", err)
	}
	switch t.Schema {
	case 0:
		t.Schema = trace.TraceSchemaVersion
	case trace.TraceSchemaVersion:
	default:
		return nil, fmt.Errorf("mc: unsupported trace schema %d (this build reads <= %d)", t.Schema, trace.TraceSchemaVersion)
	}
	if t.Kind == "" {
		t.Kind = "counterexample"
	} else if t.Kind != "counterexample" {
		return nil, fmt.Errorf("mc: trace kind %q is not a counterexample", t.Kind)
	}
	return &t, nil
}

// JSON renders the trace for storage.
func (t *Trace) JSON() []byte {
	raw, err := json.MarshalIndent(t, "", "  ")
	if err != nil {
		panic(err) // Trace contains only marshalable fields
	}
	return append(raw, '\n')
}

// Replay re-executes a trace action by action, validating each guard
// and re-checking every invariant along the way. It returns the first
// violation encountered (the regression the trace witnesses), or nil if
// the schedule completes cleanly — which, for a committed counterexample,
// means the bug it caught has been fixed (or the model has drifted).
func Replay(t *Trace) (*Violation, error) {
	cfg, err := t.ConfigOf()
	if err != nil {
		return nil, err
	}
	st := newState(cfg)
	seen := map[string]struct{}{string(encode(cfg, st, nil)): {}}
	for i, as := range t.Actions {
		a, err := parseAction(as)
		if err != nil {
			return nil, err
		}
		x := &stepCtx{cfg: cfg, st: st}
		x.apply(a)
		prefix := Trace{
			Envelope: t.Envelope,
			Procs:    t.Procs, Blocks: t.Blocks, Words: t.Words,
			OpsPerProc: t.OpsPerProc, CUThreshold: t.CUThreshold,
			DisableRetention: t.DisableRetention, OpSet: t.OpSet, Faults: t.Faults,
			Actions: t.Actions[:i+1],
		}
		if x.err != "" {
			return &Violation{Kind: VInternal, Detail: x.err, Trace: prefix}, nil
		}
		if why := checkEvery(cfg, st); why != "" {
			return &Violation{Kind: VInvariant, Detail: why, Trace: prefix}, nil
		}
		if st.quiescent(cfg) {
			if why := checkQuiescent(cfg, st); why != "" {
				return &Violation{Kind: VQuiescent, Detail: why, Trace: prefix}, nil
			}
		}
		key := string(encode(cfg, st, nil))
		if _, dup := seen[key]; dup {
			// A livelock trace ends by re-entering an earlier state.
			return &Violation{Kind: VLivelock, Detail: "schedule revisits an earlier state", Trace: prefix}, nil
		}
		seen[key] = struct{}{}
	}
	// A deadlock trace ends at a terminal state; diagnose it the same
	// way the explorer does.
	if len(enabledActions(cfg, st)) == 0 {
		if why := checkDeadlock(cfg, st); why != "" {
			return &Violation{Kind: VDeadlock, Detail: why, Trace: *t}, nil
		}
	}
	return nil, nil
}

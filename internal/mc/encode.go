package mc

// Canonical state encoding: a deterministic packed-byte serialization
// used as the deduplication key during exploration. Two states encode
// identically iff every field the transition function can observe is
// identical, so deduplication is exact (no hashing collisions to
// reason about). Invalidated lines, consumed write-back buffers, and
// cleared pend slots are zeroed by the transition function precisely so
// that semantically equal states encode equally.

// appendMsg packs one message.
func appendMsg(buf []byte, m *msg) []byte {
	flags := byte(0)
	if m.hasData {
		flags = 1
	}
	buf = append(buf, byte(m.kind), m.src, m.dst, m.block, m.word, m.val, m.val2, m.aux, flags)
	return append(buf, m.data[:]...)
}

// encode appends the canonical encoding of st (under cfg's bounds) to
// buf and returns it. Only configured processors/blocks/words are
// walked; out-of-range array slots are always zero.
func encode(cfg Config, st *state, buf []byte) []byte {
	for p := 0; p < cfg.Procs; p++ {
		pr := &st.procs[p]
		op := &pr.op
		flags := byte(0)
		if op.active {
			flags |= 1
		}
		if op.txActive {
			flags |= 2
		}
		if op.txReplied {
			flags |= 4
		}
		buf = append(buf, flags, byte(op.kind), op.block, op.word, op.val,
			op.txExp, op.txGot, pr.issued)
		for b := 0; b < cfg.Blocks; b++ {
			wb := byte(0)
			if pr.pwbValid[b] {
				wb = 1
			}
			buf = append(buf, wb, pr.cancelled[b])
			buf = append(buf, pr.pwbData[b][:]...)
		}
	}
	for p := 0; p < cfg.Procs; p++ {
		for b := 0; b < cfg.Blocks; b++ {
			ln := &st.lines[p][b]
			dirty := byte(0)
			if ln.dirty {
				dirty = 1
			}
			buf = append(buf, byte(ln.state), dirty, ln.ctr)
			buf = append(buf, ln.data[:]...)
		}
	}
	for b := 0; b < cfg.Blocks; b++ {
		d := &st.dirs[b]
		busy := byte(0)
		if d.busy {
			busy = 1
		}
		pdata := byte(0)
		if d.pend.hasData {
			pdata = 1
		}
		buf = append(buf, byte(d.state), d.owner, d.sharers, busy,
			byte(d.pend.kind), d.pend.req, d.pend.word, d.pend.acks, pdata)
		buf = append(buf, d.pend.data[:]...)
		buf = appendMsg(buf, &d.pend.resume)
		buf = append(buf, byte(len(d.waitq)))
		for i := range d.waitq {
			buf = appendMsg(buf, &d.waitq[i])
		}
	}
	for b := 0; b < cfg.Blocks; b++ {
		buf = append(buf, st.mem[b][:]...)
		for w := 0; w < cfg.Words; w++ {
			h := st.hist[b][w]
			buf = append(buf, byte(h), byte(h>>8), byte(h>>16), byte(h>>24),
				byte(h>>32), byte(h>>40), byte(h>>48), byte(h>>56))
		}
	}
	for s := 0; s < cfg.Procs; s++ {
		for d := 0; d < cfg.Procs; d++ {
			q := st.chans[s][d]
			buf = append(buf, byte(len(q)))
			for i := range q {
				buf = appendMsg(buf, &q[i])
			}
		}
	}
	return buf
}

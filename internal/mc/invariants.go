package mc

import (
	"fmt"

	"coherencesim/internal/proto"
)

// The invariant suite, stratified by when each property must hold:
//
//   - every-state invariants hold on every reachable state, including
//     mid-transaction (single-writer, dirty-implies-exclusive,
//     protocol-specific line discipline, data-value containment,
//     directory structural sanity);
//   - quiescent invariants hold whenever no message is in flight and no
//     operation is pending — the model analogue of proto.CheckCoherence
//     (copies match memory, sharer sets are exact, no transient
//     residue); and
//   - deadlock is diagnosed on terminal states (no enabled action) that
//     still carry unfinished work, livelock on cycles reachable along
//     the search path (explore.go).

// checkEvery returns a description of the first every-state invariant
// violation in st, or "".
func checkEvery(cfg Config, st *state) string {
	for b := 0; b < cfg.Blocks; b++ {
		d := &st.dirs[b]
		var holders, exclusives []int
		for p := 0; p < cfg.Procs; p++ {
			ln := &st.lines[p][b]
			switch ln.state {
			case lInvalid:
				continue
			case lExclusive:
				exclusives = append(exclusives, p)
			}
			holders = append(holders, p)
			if ln.dirty && ln.state != lExclusive {
				return fmt.Sprintf("block %d: dirty non-exclusive copy at p%d", b, p)
			}
			switch cfg.Protocol {
			case proto.CU:
				if ln.ctr >= cfg.CUThreshold {
					return fmt.Sprintf("block %d: p%d counter %d at/above threshold %d", b, p, ln.ctr, cfg.CUThreshold)
				}
			default:
				if ln.ctr != 0 {
					return fmt.Sprintf("block %d: nonzero update counter at p%d under %v", b, p, cfg.Protocol)
				}
			}
			for w := 0; w < cfg.Words; w++ {
				if !st.valueLegal(uint8(b), uint8(w), ln.data[w]) {
					return fmt.Sprintf("block %d word %d: p%d caches value %d that never legitimately existed", b, w, p, ln.data[w])
				}
			}
		}
		if len(exclusives) > 1 {
			return fmt.Sprintf("block %d: %d exclusive copies (single-writer violated)", b, len(exclusives))
		}
		if len(exclusives) == 1 {
			e := exclusives[0]
			if len(holders) > 1 {
				return fmt.Sprintf("block %d: exclusive copy at p%d alongside %d other copies", b, e, len(holders)-1)
			}
			if cfg.Protocol == proto.CU {
				return fmt.Sprintf("block %d: exclusive copy at p%d under CU (never retains)", b, e)
			}
			if d.state != dOwned || int(d.owner) != e {
				return fmt.Sprintf("block %d: exclusive copy at p%d but directory does not record p%d as owner", b, e, e)
			}
		}
		if cfg.Protocol == proto.CU {
			if d.state == dOwned {
				return fmt.Sprintf("block %d: directory owned under CU", b)
			}
			for p := 0; p < cfg.Procs; p++ {
				if st.lines[p][b].dirty {
					return fmt.Sprintf("block %d: dirty copy at p%d under CU (write-through)", b, p)
				}
			}
		}
		// Directory structural sanity.
		if int(d.owner) >= cfg.Procs {
			return fmt.Sprintf("block %d: directory owner p%d out of range", b, d.owner)
		}
		if d.sharers>>uint(cfg.Procs) != 0 {
			return fmt.Sprintf("block %d: sharer bitmap %#x names nonexistent nodes", b, d.sharers)
		}
		if d.state == dOwned && d.sharers != 0 {
			return fmt.Sprintf("block %d: owned directory entry with sharer bitmap %#x", b, d.sharers)
		}
		if !d.busy && (len(d.waitq) > 0 || d.pend.kind != pendNone) {
			return fmt.Sprintf("block %d: idle directory entry with queued/pending transactions", b)
		}
		for w := 0; w < cfg.Words; w++ {
			if !st.valueLegal(uint8(b), uint8(w), st.mem[b][w]) {
				return fmt.Sprintf("block %d word %d: memory holds value %d that never legitimately existed", b, w, st.mem[b][w])
			}
		}
	}
	// In-flight payloads must also be contained: a corrupted value is a
	// bug the instant it exists, not only once it lands in a cache.
	for s := 0; s < cfg.Procs; s++ {
		for dd := 0; dd < cfg.Procs; dd++ {
			for i := range st.chans[s][dd] {
				if why := checkMsgValues(cfg, st, &st.chans[s][dd][i]); why != "" {
					return why
				}
			}
		}
	}
	// Cancellation accounting: every cancelled write-back must have a
	// matching message still in flight to absorb the cancellation.
	for p := 0; p < cfg.Procs; p++ {
		for b := 0; b < cfg.Blocks; b++ {
			if c := st.procs[p].cancelled[b]; c > 0 {
				n := 0
				for _, m := range st.chans[p][cfg.homeOf(uint8(b))] {
					if m.kind == mWB && m.block == uint8(b) {
						n++
					}
				}
				// A cancelled write-back may also be parked behind a busy
				// directory entry rather than in a channel.
				for _, m := range st.dirs[b].waitq {
					if m.kind == mWB && m.src == uint8(p) {
						n++
					}
				}
				if int(c) > n {
					return fmt.Sprintf("p%d block %d: %d cancelled write-backs but only %d in flight", p, b, c, n)
				}
			}
		}
	}
	return ""
}

// checkMsgValues checks data-value containment for one in-flight message.
func checkMsgValues(cfg Config, st *state, m *msg) string {
	if m.hasData {
		for w := 0; w < cfg.Words; w++ {
			if !st.valueLegal(m.block, uint8(w), m.data[w]) {
				return fmt.Sprintf("in-flight %v carries value %d for block %d word %d that never legitimately existed", m.kind, m.data[w], m.block, w)
			}
		}
	}
	switch m.kind {
	case mWTReq, mUpd, mWTReply:
		if !st.valueLegal(m.block, m.word, m.val) {
			return fmt.Sprintf("in-flight %v carries value %d for block %d word %d that never legitimately existed", m.kind, m.val, m.block, m.word)
		}
	case mAtomReply:
		if !st.valueLegal(m.block, m.word, m.val2) {
			return fmt.Sprintf("in-flight atomic reply carries result %d for block %d word %d that never legitimately existed", m.val2, m.block, m.word)
		}
	}
	return ""
}

// checkQuiescent returns a description of the first quiescent-state
// invariant violation, or "". Call only when st.quiescent(cfg).
func checkQuiescent(cfg Config, st *state) string {
	for b := 0; b < cfg.Blocks; b++ {
		d := &st.dirs[b]
		if d.busy || len(d.waitq) > 0 {
			return fmt.Sprintf("block %d: directory busy/queued at quiescence", b)
		}
		holders := uint8(0)
		for p := 0; p < cfg.Procs; p++ {
			if st.lines[p][b].state != lInvalid {
				holders |= 1 << p
			}
		}
		switch d.state {
		case dUncached:
			if d.sharers != 0 || holders != 0 {
				return fmt.Sprintf("block %d: uncached at home but cached at nodes %#x (sharers %#x)", b, holders, d.sharers)
			}
		case dShared:
			if d.sharers != holders {
				return fmt.Sprintf("block %d: directory sharers %#x != actual holders %#x", b, d.sharers, holders)
			}
			if d.sharers == 0 {
				return fmt.Sprintf("block %d: shared directory entry with no sharers", b)
			}
		case dOwned:
			if holders != 1<<d.owner {
				return fmt.Sprintf("block %d: owned by p%d but cached at nodes %#x", b, d.owner, holders)
			}
			if st.lines[d.owner][b].state != lExclusive {
				return fmt.Sprintf("block %d: owner p%d holds a non-exclusive copy", b, d.owner)
			}
		}
		// Every non-owned copy must match memory word for word.
		for p := 0; p < cfg.Procs; p++ {
			ln := &st.lines[p][b]
			if ln.state != lShared {
				continue
			}
			for w := 0; w < cfg.Words; w++ {
				if ln.data[w] != st.mem[b][w] {
					return fmt.Sprintf("block %d word %d: p%d caches %d but memory holds %d", b, w, p, ln.data[w], st.mem[b][w])
				}
			}
		}
	}
	for p := 0; p < cfg.Procs; p++ {
		pr := &st.procs[p]
		for b := 0; b < cfg.Blocks; b++ {
			if pr.pwbValid[b] {
				return fmt.Sprintf("p%d block %d: pending write-back with nothing in flight", p, b)
			}
			if pr.cancelled[b] > 0 {
				return fmt.Sprintf("p%d block %d: dangling write-back cancellation", p, b)
			}
		}
	}
	return ""
}

// checkDeadlock diagnoses a terminal state (no enabled action) that
// still carries unfinished work. With every issue budget spent and no
// message deliverable, all transactions must have fully completed.
func checkDeadlock(cfg Config, st *state) string {
	for p := 0; p < cfg.Procs; p++ {
		if st.procs[p].op.active {
			return fmt.Sprintf("deadlock: p%d's %v never completes", p, st.procs[p].op.kind)
		}
	}
	for b := 0; b < cfg.Blocks; b++ {
		if st.dirs[b].busy {
			return fmt.Sprintf("deadlock: block %d directory entry busy forever", b)
		}
		if len(st.dirs[b].waitq) > 0 {
			return fmt.Sprintf("deadlock: block %d has transactions queued forever", b)
		}
	}
	for p := 0; p < cfg.Procs; p++ {
		for b := 0; b < cfg.Blocks; b++ {
			if st.procs[p].pwbValid[b] || st.procs[p].cancelled[b] > 0 {
				return fmt.Sprintf("deadlock: p%d block %d write-back bookkeeping never drains", p, b)
			}
		}
	}
	return ""
}

package mc

import (
	"testing"

	"coherencesim/internal/proto"
)

func allProtocols() []proto.Protocol { return []proto.Protocol{proto.WI, proto.PU, proto.CU} }

// TestExploreSmoke is the tier-1 smoke slice: every protocol at the
// smallest interesting bounds must explore cleanly.
func TestExploreSmoke(t *testing.T) {
	for _, p := range allProtocols() {
		p := p
		t.Run(p.String(), func(t *testing.T) {
			t.Parallel()
			cfg := DefaultConfig(p)
			res, err := Explore(cfg)
			if err != nil {
				t.Fatal(err)
			}
			for _, v := range res.Violations {
				t.Errorf("violation: %v\ntrace:\n%s", v, v.Trace.JSON())
			}
			if res.States < 100 {
				t.Errorf("suspiciously small state space: %d states", res.States)
			}
			if res.Quiescent < 2 {
				t.Errorf("expected multiple quiescent states, got %d", res.Quiescent)
			}
			t.Logf("%v: %d states, %d transitions, %d quiescent, depth %d",
				p, res.States, res.Transitions, res.Quiescent, res.MaxDepth)
		})
	}
}

// TestExploreTwoBlocks widens the smoke slice to two blocks and two
// words so cross-block races (write-back vs read, per-word updates) are
// in scope.
func TestExploreTwoBlocks(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-block exploration is not short")
	}
	for _, p := range allProtocols() {
		p := p
		t.Run(p.String(), func(t *testing.T) {
			t.Parallel()
			cfg := DefaultConfig(p)
			cfg.Blocks = 2
			cfg.Words = 2
			cfg.OpsPerProc = 2
			res, err := Explore(cfg)
			if err != nil {
				t.Fatal(err)
			}
			for _, v := range res.Violations {
				t.Errorf("violation: %v\ntrace:\n%s", v, v.Trace.JSON())
			}
			t.Logf("%v: %d states, %d transitions, %d quiescent",
				p, res.States, res.Transitions, res.Quiescent)
		})
	}
}

// TestExploreThreeProcs runs the three-processor slice used by the CI
// matrix at reduced depth.
func TestExploreThreeProcs(t *testing.T) {
	if testing.Short() {
		t.Skip("three-processor exploration is not short")
	}
	for _, p := range allProtocols() {
		p := p
		t.Run(p.String(), func(t *testing.T) {
			t.Parallel()
			cfg := DefaultConfig(p)
			cfg.Procs = 3
			cfg.OpsPerProc = 1
			res, err := Explore(cfg)
			if err != nil {
				t.Fatal(err)
			}
			for _, v := range res.Violations {
				t.Errorf("violation: %v\ntrace:\n%s", v, v.Trace.JSON())
			}
		})
	}
}

// seededFaults enumerates every injected fault with the protocol it
// applies to and the violation kind it must produce.
var seededFaults = []struct {
	name  string
	proto proto.Protocol
	set   func(*Faults)
	kinds []ViolationKind // acceptable detections
}{
	{"skip-inv-ack", proto.WI, func(f *Faults) { f.SkipInvAck = true }, []ViolationKind{VDeadlock}},
	{"grant-before-acks", proto.WI, func(f *Faults) { f.GrantBeforeAcks = true }, []ViolationKind{VInvariant}},
	{"skip-drop-notice", proto.CU, func(f *Faults) { f.SkipDropNotice = true }, []ViolationKind{VQuiescent}},
	{"phantom-retention", proto.PU, func(f *Faults) { f.PhantomRetention = true }, []ViolationKind{VInvariant, VQuiescent}},
	{"stale-update-value", proto.PU, func(f *Faults) { f.StaleUpdateValue = true }, []ViolationKind{VQuiescent, VInvariant}},
}

// TestSeededFaultsProduceCounterexamples is the checker's self-test:
// each deliberately broken protocol variant must yield a counterexample,
// and the emitted trace must replay (through the same broken variant) to
// the same violation — while the faithful model replays it cleanly.
func TestSeededFaultsProduceCounterexamples(t *testing.T) {
	for _, tc := range seededFaults {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			cfg := DefaultConfig(tc.proto)
			cfg.Procs = 3 // faults on sharer fan-out need a third party
			if tc.proto == proto.CU {
				cfg.CUThreshold = 1 // reach the drop edge within budget
			}
			tc.set(&cfg.Faults)
			res, err := Explore(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Violations) == 0 {
				t.Fatalf("fault %s produced no counterexample over %d states", tc.name, res.States)
			}
			v := res.Violations[0]
			ok := false
			for _, k := range tc.kinds {
				if v.Kind == k {
					ok = true
				}
			}
			if !ok {
				t.Fatalf("fault %s detected as %v (%s), want one of %v", tc.name, v.Kind, v.Detail, tc.kinds)
			}

			// The trace must replay to a violation under the same faults.
			rv, err := Replay(&v.Trace)
			if err != nil {
				t.Fatal(err)
			}
			if rv == nil {
				t.Fatalf("counterexample for %s replays cleanly", tc.name)
			}

			// The faithful model must NOT fail on the same schedule — the
			// bug is in the fault, not the schedule. (Deadlock traces are
			// exempt: dropping the fault changes message flow, so the
			// schedule may no longer be executable; guard-validation only.)
			clean := v.Trace
			clean.Faults = Faults{}
			cv, err := Replay(&clean)
			if err != nil {
				t.Fatal(err)
			}
			if cv != nil && cv.Kind != VInternal {
				t.Fatalf("faithful model fails the %s schedule too: %v", tc.name, cv)
			}
		})
	}
}

// TestFaithfulReplayRoundTrip: an explored violation-free config's
// schedules replay exactly (spot check via a synthetic trace).
func TestFaithfulReplayRoundTrip(t *testing.T) {
	syn := &Trace{
		Procs: 2, Blocks: 1, Words: 1, OpsPerProc: 2, CUThreshold: 4,
		Actions: []string{
			"p0 write b0.w0", // issue
			"0>0",            // WI request to home (self)
			"0>0",            // grant back
			"p1 read b0.w0",  // issue read
			"1>0",            // read request
			"0>1",            // owner fetch? (home is p0; owner is p0 -> local)
		},
	}
	syn.Protocol = "WI"
	// The exact message flow depends on the model; just require that
	// replay either completes cleanly or reports a guard violation —
	// never panics — and that a malformed action errors.
	if _, err := Replay(syn); err != nil {
		t.Logf("replay reported: %v", err)
	}
	badProto := &Trace{Procs: 2, Blocks: 1, Words: 1, OpsPerProc: 1, CUThreshold: 4}
	badProto.Protocol = "XX"
	if _, err := Replay(badProto); err == nil {
		t.Fatal("bad protocol accepted")
	}
	bad := &Trace{Procs: 2, Blocks: 1, Words: 1, OpsPerProc: 1, CUThreshold: 4, Actions: []string{"garbage"}}
	bad.Protocol = "WI"
	if _, err := Replay(bad); err == nil {
		t.Fatal("garbage action accepted")
	}
}

// TestTraceJSONRoundTrip pins the serialization format.
func TestTraceJSONRoundTrip(t *testing.T) {
	cfg := DefaultConfig(proto.WI)
	cfg.Faults.SkipInvAck = true
	cfg.Procs = 3
	res, err := Explore(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) == 0 {
		t.Fatal("no violation to serialize")
	}
	raw := res.Violations[0].Trace.JSON()
	back, err := ParseTrace(raw)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Actions) != len(res.Violations[0].Trace.Actions) {
		t.Fatalf("round trip lost actions: %d != %d", len(back.Actions), len(res.Violations[0].Trace.Actions))
	}
	rv, err := Replay(back)
	if err != nil {
		t.Fatal(err)
	}
	if rv == nil {
		t.Fatal("deserialized counterexample replays cleanly")
	}
}

// TestExploreMaxStates pins the explicit-abort behaviour: bounded
// exploration must fail loudly, never silently truncate.
func TestExploreMaxStates(t *testing.T) {
	cfg := DefaultConfig(proto.WI)
	cfg.MaxStates = 10
	if _, err := Explore(cfg); err == nil {
		t.Fatal("MaxStates=10 exploration succeeded; want explicit abort")
	}
}

// TestExploreMatrixOrder pins deterministic matrix ordering.
func TestExploreMatrixOrder(t *testing.T) {
	res, err := ExploreMatrix(DefaultConfig(proto.WI), []int{3, 2}, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 || res[0].Config.Procs != 2 || res[1].Config.Procs != 3 {
		t.Fatalf("matrix order not ascending: %+v", res)
	}
}

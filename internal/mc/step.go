package mc

import (
	"fmt"
	"math/bits"

	"coherencesim/internal/proto"
)

// This file is the model's transition function: the guarded actions.
// Every handler mirrors one event handler in internal/proto (the file
// and function are named in comments), executing atomically over the
// model state. Memory latency collapses into the action — sound because
// the implementation holds the directory entry busy across a memory
// access, so no other transaction for the block can observe the window;
// what the model deliberately keeps is per-(src,dst) channel FIFO, the
// only ordering property the implementation's correctness arguments use.

// action is one guarded action: an operation issue or the delivery of
// the head message of a channel.
type action struct {
	issue       bool
	p           uint8  // issue: processor
	kind        OpKind // issue: operation
	block, word uint8  // issue: target
	src, dst    uint8  // deliver: channel
}

func (a action) String() string {
	if a.issue {
		if a.kind == OpFlush {
			return fmt.Sprintf("issue p%d %v b%d", a.p, a.kind, a.block)
		}
		return fmt.Sprintf("issue p%d %v b%d.w%d", a.p, a.kind, a.block, a.word)
	}
	return fmt.Sprintf("deliver %d->%d", a.src, a.dst)
}

// enabledActions enumerates the actions enabled in st, in a fixed
// deterministic order: issues (processor-, kind-, block-, word-major),
// then deliveries (src-, dst-major).
func enabledActions(cfg Config, st *state) []action {
	var acts []action
	for p := 0; p < cfg.Procs; p++ {
		pr := &st.procs[p]
		if pr.op.active || int(pr.issued) >= cfg.OpsPerProc {
			continue
		}
		for _, k := range cfg.opSet() {
			for b := 0; b < cfg.Blocks; b++ {
				if k == OpFlush {
					acts = append(acts, action{issue: true, p: uint8(p), kind: k, block: uint8(b)})
					continue
				}
				for w := 0; w < cfg.Words; w++ {
					acts = append(acts, action{issue: true, p: uint8(p), kind: k, block: uint8(b), word: uint8(w)})
				}
			}
		}
	}
	for s := 0; s < cfg.Procs; s++ {
		for d := 0; d < cfg.Procs; d++ {
			if len(st.chans[s][d]) > 0 {
				acts = append(acts, action{src: uint8(s), dst: uint8(d)})
			}
		}
	}
	return acts
}

// stepCtx applies one action to a state, collecting any model-internal
// error (the analogue of an implementation panic) instead of crashing,
// so fault-injected variants surface cleanly as violations.
type stepCtx struct {
	cfg Config
	st  *state
	err string
	// obs, when non-nil, receives observation callbacks the sequential
	// conformance runner uses (values returned by reads and atomics).
	obs *observer
}

// observer collects the architectural results of operations — what the
// simulated program would see — for conformance comparison.
type observer struct {
	readVals []uint8 // value delivered by each completed read, in order
	atomOlds []uint8 // old value returned by each atomic, in order
}

func (x *stepCtx) errf(format string, args ...interface{}) {
	if x.err == "" {
		x.err = fmt.Sprintf(format, args...)
	}
}

// apply runs one action, validating its guard (for trace replay).
func (x *stepCtx) apply(a action) {
	if a.issue {
		pr := &x.st.procs[a.p]
		if int(a.p) >= x.cfg.Procs || pr.op.active || int(pr.issued) >= x.cfg.OpsPerProc {
			x.errf("issue action not enabled: %v", a)
			return
		}
		if int(a.block) >= x.cfg.Blocks || int(a.word) >= x.cfg.Words {
			x.errf("issue action out of bounds: %v", a)
			return
		}
		x.issue(a.p, a.kind, a.block, a.word)
		return
	}
	if int(a.src) >= x.cfg.Procs || int(a.dst) >= x.cfg.Procs || len(x.st.chans[a.src][a.dst]) == 0 {
		x.errf("deliver action not enabled: %v", a)
		return
	}
	x.deliver(a.src, a.dst)
}

// clearLine invalidates a line, zeroing every field so canonically equal
// states encode identically.
func clearLine(ln *line) { *ln = line{} }

// complete retires processor p's in-flight operation.
func (x *stepCtx) complete(p uint8) { x.st.procs[p].op = procOp{} }

// maybeFinishTx completes a write-through/atomic once the home reply has
// arrived and every expected sharer acknowledgement is in (the updTx
// check(); completion implies the release-consistency drain).
func (x *stepCtx) maybeFinishTx(p uint8) {
	op := &x.st.procs[p].op
	if !op.txActive || !op.txReplied {
		return
	}
	if op.txGot > op.txExp {
		x.errf("p%d received %d acks, expected %d", p, op.txGot, op.txExp)
		return
	}
	if op.txGot == op.txExp {
		op.txActive = false
		x.complete(p)
	}
}

// issue starts operation (kind, block, word) on processor p.
// Mirrors the machine layer calling proto.Read/Write/Atomic/FlushBlock.
func (x *stepCtx) issue(p uint8, kind OpKind, block, word uint8) {
	st, cfg := x.st, x.cfg
	pr := &st.procs[p]
	pr.op = procOp{active: true, kind: kind, block: block, word: word}
	op := &pr.op
	home := cfg.homeOf(block)
	switch kind {
	case OpRead: // proto.(*System).Read
		ln := &st.lines[p][block]
		if ln.state != lInvalid {
			ln.ctr = 0 // a reference resets the CU counter
			x.observeRead(ln.data[word])
			x.complete(p)
			pr.issued++
			return
		}
		pr.issued++
		st.send(msg{kind: mReadReq, src: p, dst: home, block: block, word: word})

	case OpWrite:
		op.val = writeValue(cfg, p, pr.issued)
		pr.issued++
		st.recordValue(block, word, op.val)
		if cfg.Protocol == proto.WI {
			x.wiStart(p) // wi.go wiWrite -> op.start
			return
		}
		// update.go updWrite: write-allocate fetch on a miss, then the
		// local write-through path.
		if st.lines[p][block].state == lInvalid {
			st.send(msg{kind: mReadReq, src: p, dst: home, block: block, word: word})
			return
		}
		x.updLocal(p)

	case OpAtomic:
		pr.issued++
		if cfg.Protocol == proto.WI {
			x.wiStart(p) // wi.go wiAtomic -> op.start
			return
		}
		// update.go updAtomic: executes at the home memory.
		op.txActive = true
		var aux uint8
		if st.lines[p][block].state == lInvalid {
			aux = auxNeedData
		}
		st.send(msg{kind: mAtomReq, src: p, dst: home, block: block, word: word, aux: aux})

	case OpFlush: // api.go FlushBlock
		pr.issued++
		ln := &st.lines[p][block]
		if ln.state == lInvalid {
			x.complete(p)
			return
		}
		old := *ln
		clearLine(ln)
		if old.dirty || old.state == lExclusive {
			// proto.sendWriteback: data parks in pendingWB until the home
			// consumes the write-back (or a forwarded request cancels it).
			pr.pwbValid[block] = true
			pr.pwbData[block] = old.data
			st.send(msg{kind: mWB, src: p, dst: home, block: block, hasData: true, data: old.data})
		} else {
			st.send(msg{kind: mNote, src: p, dst: home, block: block, aux: auxNoteRelinquish})
		}
		// FlushBlock's done() is immediate: the flush completes locally
		// while the write-back/notice is still in flight.
		x.complete(p)

	default:
		x.errf("unknown op kind %d", kind)
	}
}

func (x *stepCtx) observeRead(v uint8) {
	if x.obs != nil {
		x.obs.readVals = append(x.obs.readVals, v)
	}
}

func (x *stepCtx) observeAtomic(old uint8) {
	if x.obs != nil {
		x.obs.atomOlds = append(x.obs.atomOlds, old)
	}
}

// wiStart mirrors wiOp.start: perform locally on an Exclusive copy,
// otherwise request ownership from the home (upgrade or write miss).
func (x *stepCtx) wiStart(p uint8) {
	st := x.st
	op := &st.procs[p].op
	if st.lines[p][op.block].state == lExclusive {
		x.wiPerform(p)
		return
	}
	st.send(msg{kind: mWIReq, src: p, dst: x.cfg.homeOf(op.block), block: op.block})
}

// wiPerform mirrors wiOp.perform: the deferred store/atomic on the
// now-exclusive line.
func (x *stepCtx) wiPerform(p uint8) {
	st := x.st
	op := st.procs[p].op
	ln := &st.lines[p][op.block]
	if ln.state != lExclusive {
		x.errf("p%d performing on non-exclusive line (block %d)", p, op.block)
		return
	}
	if op.kind == OpAtomic {
		old := ln.data[op.word]
		nv := old + 1
		st.recordValue(op.block, op.word, nv)
		ln.data[op.word] = nv
		ln.dirty = true
		x.observeAtomic(old)
		x.complete(p)
		return
	}
	ln.data[op.word] = op.val
	ln.dirty = true
	x.complete(p)
}

// updLocal mirrors wrMsg.local: a retained-private block takes the write
// locally; otherwise the value writes through to the home. The writer's
// own copy is deliberately NOT updated here — the home's serialized
// reply applies it (see update.go's ordering comment).
func (x *stepCtx) updLocal(p uint8) {
	st := x.st
	op := &st.procs[p].op
	ln := &st.lines[p][op.block]
	if ln.state != lInvalid {
		ln.ctr = 0
		if ln.state == lExclusive {
			ln.data[op.word] = op.val
			ln.dirty = true
			x.complete(p)
			return
		}
	}
	op.txActive = true
	st.send(msg{kind: mWTReq, src: p, dst: x.cfg.homeOf(op.block), block: op.block, word: op.word, val: op.val})
}

// deliver pops and dispatches the head message of channel (src, dst).
func (x *stepCtx) deliver(src, dst uint8) {
	q := x.st.chans[src][dst]
	m := q[0]
	if len(q) == 1 {
		x.st.chans[src][dst] = nil
	} else {
		x.st.chans[src][dst] = q[1:]
	}
	x.dispatch(m)
}

func (x *stepCtx) dispatch(m msg) {
	switch m.kind {
	case mReadReq, mWIReq, mWTReq, mAtomReq, mWB:
		x.dispatchHome(m)
	case mReadOwnerFetch:
		x.readOwnerFetch(m)
	case mReadOwnerData:
		x.readOwnerData(m)
	case mReadReply:
		x.readReply(m)
	case mInv:
		x.invalidate(m)
	case mInvAck:
		x.invAck(m)
	case mWIOwnerFetch:
		x.wiOwnerFetch(m)
	case mWIOwnerData:
		x.wiOwnerData(m)
	case mGrant:
		x.granted(m)
	case mUpd:
		x.update(m)
	case mUpdAck:
		x.updAck(m)
	case mWTReply:
		x.wtReply(m)
	case mAtomReply:
		x.atomReply(m)
	case mNote:
		x.note(m)
	case mDemote:
		x.demote(m)
	case mDemoteData:
		x.demoteData(m)
	default:
		x.errf("delivered unknown message kind %v", m.kind)
	}
}

// dispatchHome routes the requests that serialize on the directory
// entry: a busy entry queues them (proto.whenFree / wrMsg.req), and
// release re-dispatches the queue in FIFO order.
func (x *stepCtx) dispatchHome(m msg) {
	d := &x.st.dirs[m.block]
	if d.busy {
		d.waitq = append(d.waitq, m)
		return
	}
	switch m.kind {
	case mReadReq:
		x.homeRead(m)
	case mWIReq:
		x.homeWIReq(m)
	case mWTReq:
		if d.state == dOwned {
			x.startDemote(m)
			return
		}
		x.homeWriteThrough(m)
	case mAtomReq:
		if d.state == dOwned {
			x.startDemote(m)
			return
		}
		x.homeAtomic(m)
	case mWB:
		x.homeWriteback(m)
	}
}

// release mirrors proto.release: clear busy, then dispatch queued
// transactions until one takes the entry busy again.
func (x *stepCtx) release(block uint8) {
	d := &x.st.dirs[block]
	d.busy = false
	d.pend = pendTx{}
	for !d.busy && len(d.waitq) > 0 {
		m := d.waitq[0]
		if len(d.waitq) == 1 {
			d.waitq = nil
		} else {
			d.waitq = d.waitq[1:]
		}
		x.dispatchHome(m)
	}
}

// takeOwnerData mirrors proto.takeOwnerData: the owner's live line, or
// the pending write-back buffer of a line flushed while the transaction
// was in flight (cancelling the in-flight write-back).
func (x *stepCtx) takeOwnerData(owner, block uint8, demote bool) ([MaxWords]uint8, bool) {
	st := x.st
	ln := &st.lines[owner][block]
	if ln.state != lInvalid {
		data := ln.data
		if demote {
			ln.state = lShared
			ln.dirty = false
		} else {
			clearLine(ln)
		}
		return data, true
	}
	pr := &st.procs[owner]
	if pr.pwbValid[block] {
		data := pr.pwbData[block]
		pr.pwbValid[block] = false
		pr.pwbData[block] = [MaxWords]uint8{}
		pr.cancelled[block]++
		return data, true
	}
	x.errf("owner p%d holds neither line nor pending write-back for block %d", owner, block)
	return [MaxWords]uint8{}, false
}

// homeRead mirrors readMsg.locked/got: serve from memory (uncached or
// shared) or start an owner fetch.
func (x *stepCtx) homeRead(m msg) {
	st := x.st
	d := &st.dirs[m.block]
	switch d.state {
	case dUncached, dShared:
		// Memory read + reply booking collapse into this action; the
		// entry's busy window has no observable interior.
		reply := msg{kind: mReadReply, src: m.dst, dst: m.src, block: m.block, word: m.word, hasData: true, data: st.mem[m.block]}
		d.state = dShared
		d.add(m.src)
		st.send(reply)
	case dOwned:
		d.busy = true
		d.pend = pendTx{kind: pendRead, req: m.src, word: m.word}
		st.send(msg{kind: mReadOwnerFetch, src: m.dst, dst: d.owner, block: m.block})
	}
}

// readOwnerFetch mirrors readMsg.ownerFetch: demote the owner to Shared
// and forward its data home.
func (x *stepCtx) readOwnerFetch(m msg) {
	data, ok := x.takeOwnerData(m.dst, m.block, true)
	if !ok {
		return
	}
	x.st.send(msg{kind: mReadOwnerData, src: m.dst, dst: x.cfg.homeOf(m.block), block: m.block, hasData: true, data: data})
}

// readOwnerData mirrors readMsg.ownerBack/ownerWrote: refresh memory,
// rebuild the sharer set, and book the data reply.
func (x *stepCtx) readOwnerData(m msg) {
	st := x.st
	d := &st.dirs[m.block]
	if !d.busy || d.pend.kind != pendRead {
		x.errf("read owner data for block %d without a pending read", m.block)
		return
	}
	st.mem[m.block] = m.data
	d.state = dShared
	d.sharers = 0
	if st.lines[m.src][m.block].state != lInvalid {
		d.add(m.src)
	}
	d.add(d.pend.req)
	st.send(msg{kind: mReadReply, src: m.dst, dst: d.pend.req, block: m.block, word: d.pend.word, hasData: true, data: m.data})
	x.release(m.block)
}

// readReply mirrors readMsg.install: install the block Shared (keeping
// an existing line if a racing transaction installed one first) and
// complete the read — or, for a write-allocate fetch, continue into the
// local write-through path (wrMsg.fetchFn).
func (x *stepCtx) readReply(m msg) {
	st := x.st
	p := m.dst
	ln := &st.lines[p][m.block]
	if ln.state == lInvalid {
		*ln = line{state: lShared, data: m.data}
	}
	ln.ctr = 0
	op := &st.procs[p].op
	if !op.active {
		x.errf("read reply at p%d with no operation in flight", p)
		return
	}
	switch op.kind {
	case OpRead:
		x.observeRead(ln.data[m.word])
		x.complete(p)
	case OpWrite:
		x.updLocal(p)
	default:
		x.errf("read reply at p%d during %v", p, op.kind)
	}
}

// homeWIReq mirrors wiOp.locked: fetch from memory (uncached), multicast
// invalidations and collect acks (shared), or fetch-and-invalidate the
// old owner (owned).
func (x *stepCtx) homeWIReq(m msg) {
	st := x.st
	d := &st.dirs[m.block]
	p := m.src
	home := m.dst
	switch d.state {
	case dUncached:
		d.state = dOwned
		d.owner = p
		d.sharers = 0
		st.send(msg{kind: mGrant, src: home, dst: p, block: m.block, hasData: true, data: st.mem[m.block]})

	case dShared:
		needData := !d.has(p)
		others := d.othersMask(p)
		if others == 0 {
			// The no-other-sharers upgrade grants immediately.
			grant := msg{kind: mGrant, src: home, dst: p, block: m.block}
			if needData {
				grant.hasData = true
				grant.data = st.mem[m.block]
			}
			d.state = dOwned
			d.owner = p
			d.sharers = 0
			st.send(grant)
			return
		}
		if x.cfg.Faults.GrantBeforeAcks {
			// FAULT: grant while invalidations are still in flight.
			for q := uint8(0); q < uint8(x.cfg.Procs); q++ {
				if others&(1<<q) != 0 {
					st.send(msg{kind: mInv, src: home, dst: q, block: m.block})
				}
			}
			grant := msg{kind: mGrant, src: home, dst: p, block: m.block}
			if needData {
				grant.hasData = true
				grant.data = st.mem[m.block]
			}
			d.state = dOwned
			d.owner = p
			d.sharers = 0
			st.send(grant)
			return
		}
		d.busy = true
		d.pend = pendTx{kind: pendWI, req: p, acks: uint8(bits.OnesCount8(others)), hasData: needData}
		if needData {
			d.pend.data = st.mem[m.block]
		}
		for q := uint8(0); q < uint8(x.cfg.Procs); q++ {
			if others&(1<<q) != 0 {
				st.send(msg{kind: mInv, src: home, dst: q, block: m.block})
			}
		}

	case dOwned:
		d.busy = true
		d.pend = pendTx{kind: pendWIOwner, req: p}
		st.send(msg{kind: mWIOwnerFetch, src: home, dst: d.owner, block: m.block})
	}
}

// invalidate mirrors invMsg.deliver: drop the copy and acknowledge to
// the home.
func (x *stepCtx) invalidate(m msg) {
	st := x.st
	q := m.dst
	ln := &st.lines[q][m.block]
	if ln.state != lInvalid {
		clearLine(ln)
	}
	if x.cfg.Faults.SkipInvAck && int(q) == x.cfg.Procs-1 {
		return // FAULT: the last node swallows its acknowledgement.
	}
	st.send(msg{kind: mInvAck, src: q, dst: x.cfg.homeOf(m.block), block: m.block})
}

// invAck mirrors wiOp.ack/maybeGrant/grant.
func (x *stepCtx) invAck(m msg) {
	st := x.st
	d := &st.dirs[m.block]
	if !d.busy || d.pend.kind != pendWI || d.pend.acks == 0 {
		if x.cfg.Faults.GrantBeforeAcks {
			return // the faulty home ignores the acks it never waited for
		}
		x.errf("stray invalidation ack for block %d", m.block)
		return
	}
	d.pend.acks--
	if d.pend.acks > 0 {
		return
	}
	grant := msg{kind: mGrant, src: m.dst, dst: d.pend.req, block: m.block, hasData: d.pend.hasData, data: d.pend.data}
	d.state = dOwned
	d.owner = d.pend.req
	d.sharers = 0
	st.send(grant)
	x.release(m.block)
}

// wiOwnerFetch mirrors wiOp.ownerFetch: take the old owner's data,
// invalidating its copy.
func (x *stepCtx) wiOwnerFetch(m msg) {
	data, ok := x.takeOwnerData(m.dst, m.block, false)
	if !ok {
		return
	}
	x.st.send(msg{kind: mWIOwnerData, src: m.dst, dst: x.cfg.homeOf(m.block), block: m.block, hasData: true, data: data})
}

// wiOwnerData mirrors wiOp.ownerBack/ownerWrote: refresh memory and
// grant ownership with the fetched data.
func (x *stepCtx) wiOwnerData(m msg) {
	st := x.st
	d := &st.dirs[m.block]
	if !d.busy || d.pend.kind != pendWIOwner {
		x.errf("WI owner data for block %d without a pending acquisition", m.block)
		return
	}
	st.mem[m.block] = m.data
	grant := msg{kind: mGrant, src: m.dst, dst: d.pend.req, block: m.block, hasData: true, data: m.data}
	d.state = dOwned
	d.owner = d.pend.req
	d.sharers = 0
	st.send(grant)
	x.release(m.block)
}

// granted mirrors wiOp.granted: take ownership at the requester and run
// the deferred store/atomic.
func (x *stepCtx) granted(m msg) {
	st := x.st
	p := m.dst
	op := &st.procs[p].op
	if !op.active || (op.kind != OpWrite && op.kind != OpAtomic) {
		x.errf("grant at p%d with no write/atomic in flight", p)
		return
	}
	ln := &st.lines[p][m.block]
	switch {
	case ln.state != lInvalid:
		ln.state = lExclusive
		if m.hasData {
			ln.data = m.data
		}
	case m.hasData:
		*ln = line{state: lExclusive, data: m.data}
	default:
		// Upgrade grant raced with losing the line: retry from scratch.
		// Unreachable without conflict evictions; kept to mirror wi.go.
		x.wiStart(p)
		return
	}
	x.wiPerform(p)
}

// startDemote mirrors proto.demoteOwner's opening: fetch the retained
// block back, holding the entry busy, then re-dispatch the request.
func (x *stepCtx) startDemote(m msg) {
	st := x.st
	d := &st.dirs[m.block]
	d.busy = true
	d.pend = pendTx{kind: pendDemote, resume: m}
	st.send(msg{kind: mDemote, src: m.dst, dst: d.owner, block: m.block})
}

// demote mirrors demoteOwner's owner-side closure.
func (x *stepCtx) demote(m msg) {
	data, ok := x.takeOwnerData(m.dst, m.block, true)
	if !ok {
		return
	}
	x.st.send(msg{kind: mDemoteData, src: m.dst, dst: x.cfg.homeOf(m.block), block: m.block, hasData: true, data: data})
}

// demoteData mirrors demoteOwner's completion: refresh memory, rebuild
// the sharer set, release the entry, then re-dispatch the demoting
// request (which re-examines all state).
func (x *stepCtx) demoteData(m msg) {
	st := x.st
	d := &st.dirs[m.block]
	if !d.busy || d.pend.kind != pendDemote {
		x.errf("demote data for block %d without a pending demote", m.block)
		return
	}
	resume := d.pend.resume
	st.mem[m.block] = m.data
	d.state = dShared
	d.sharers = 0
	if st.lines[m.src][m.block].state != lInvalid {
		d.add(m.src)
	}
	if d.sharers == 0 {
		d.state = dUncached
	}
	x.release(m.block)
	x.dispatchHome(resume)
}

// homeWriteThrough mirrors wrMsg.req (non-busy, non-owned) and wrote:
// memory word write, PU retention decision, update multicast, reply.
func (x *stepCtx) homeWriteThrough(m msg) {
	st, cfg := x.st, x.cfg
	d := &st.dirs[m.block]
	p := m.src
	home := m.dst
	old := st.mem[m.block][m.word]
	st.mem[m.block][m.word] = m.val
	others := d.othersMask(p)
	if cfg.Protocol == proto.PU && !cfg.DisableRetention &&
		(others == 0 || cfg.Faults.PhantomRetention) &&
		d.state == dShared && d.has(p) {
		if ln := &st.lines[p][m.block]; ln.state == lShared {
			// Retention: the line takes the written value at the decision
			// instant and stays clean (it matches memory).
			ln.state = lExclusive
			ln.data[m.word] = m.val
			d.state = dOwned
			d.owner = p
			d.sharers = 0
		}
	}
	uv := m.val
	if cfg.Faults.StaleUpdateValue {
		uv = old // FAULT: multicast the pre-write value.
	}
	for q := uint8(0); q < uint8(cfg.Procs); q++ {
		if others&(1<<q) != 0 {
			st.send(msg{kind: mUpd, src: home, dst: q, block: m.block, word: m.word, val: uv, aux: p})
		}
	}
	st.send(msg{kind: mWTReply, src: home, dst: p, block: m.block, word: m.word, val: m.val, aux: uint8(bits.OnesCount8(others))})
}

// update mirrors deliverUpdate: plain application under PU,
// counter-gated application or self-invalidation under CU; stale
// sharers and retained owners acknowledge without applying.
func (x *stepCtx) update(m msg) {
	st, cfg := x.st, x.cfg
	q := m.dst
	writer := m.aux
	ack := msg{kind: mUpdAck, src: q, dst: writer, block: m.block}
	ln := &st.lines[q][m.block]
	if ln.state == lInvalid || ln.state == lExclusive {
		st.send(ack)
		return
	}
	if cfg.Protocol == proto.CU {
		// No parked spinners in the model, so no Watched() reset.
		ln.ctr++
		if ln.ctr >= cfg.CUThreshold {
			clearLine(ln)
			if !cfg.Faults.SkipDropNotice {
				st.send(msg{kind: mNote, src: q, dst: cfg.homeOf(m.block), block: m.block, aux: auxNoteDrop})
			}
			st.send(ack)
			return
		}
	}
	ln.data[m.word] = m.val
	st.send(ack)
}

// updAck mirrors updTx.ack.
func (x *stepCtx) updAck(m msg) {
	op := &x.st.procs[m.dst].op
	if !op.active || !op.txActive {
		x.errf("stray update ack at p%d", m.dst)
		return
	}
	op.txGot++
	x.maybeFinishTx(m.dst)
}

// wtReply mirrors wrMsg.reply: apply the serialized value to the
// writer's own (non-exclusive) copy, account the expected acks, retire.
func (x *stepCtx) wtReply(m msg) {
	st := x.st
	p := m.dst
	op := &st.procs[p].op
	if !op.active || op.kind != OpWrite || !op.txActive {
		x.errf("write-through reply at p%d with no write in flight", p)
		return
	}
	if ln := &st.lines[p][m.block]; ln.state == lShared {
		ln.data[m.word] = m.val
	}
	op.txReplied = true
	op.txExp = m.aux
	x.maybeFinishTx(p)
}

// homeAtomic mirrors atomMsg.locked/wrote: the read-modify-write at the
// home memory, update multicast, reply (with the block for a new
// sharer).
func (x *stepCtx) homeAtomic(m msg) {
	st, cfg := x.st, x.cfg
	d := &st.dirs[m.block]
	p := m.src
	home := m.dst
	old := st.mem[m.block][m.word]
	nv := old + 1
	st.recordValue(m.block, m.word, nv)
	st.mem[m.block][m.word] = nv
	others := d.othersMask(p)
	uv := nv
	if cfg.Faults.StaleUpdateValue {
		uv = old
	}
	for q := uint8(0); q < uint8(cfg.Procs); q++ {
		if others&(1<<q) != 0 {
			st.send(msg{kind: mUpd, src: home, dst: q, block: m.block, word: m.word, val: uv, aux: p})
		}
	}
	reply := msg{kind: mAtomReply, src: home, dst: p, block: m.block, word: m.word,
		val: old, val2: nv, aux: uint8(bits.OnesCount8(others))}
	if m.aux&auxNeedData != 0 {
		// The requester becomes a sharer; the reply carries the block.
		reply.hasData = true
		reply.data = st.mem[m.block]
		d.add(p)
		if d.state == dUncached {
			d.state = dShared
		}
	}
	st.send(reply)
}

// atomReply mirrors atomMsg.reply: install the block if fetched, apply
// the new value to the cached copy, finish the transaction.
func (x *stepCtx) atomReply(m msg) {
	st := x.st
	p := m.dst
	op := &st.procs[p].op
	if !op.active || op.kind != OpAtomic || !op.txActive {
		x.errf("atomic reply at p%d with no atomic in flight", p)
		return
	}
	if m.hasData {
		if ln := &st.lines[p][m.block]; ln.state == lInvalid {
			*ln = line{state: lShared, data: m.data}
		}
	}
	if ln := &st.lines[p][m.block]; ln.state != lInvalid {
		ln.data[m.word] = m.val2
		ln.ctr = 0
	}
	op.txReplied = true
	op.txExp = m.aux
	x.observeAtomic(m.val)
	x.maybeFinishTx(p)
}

// homeWriteback mirrors wbMsg.locked/homeWriteback: apply (or discard a
// cancelled) dirty write-back and fix the directory.
func (x *stepCtx) homeWriteback(m msg) {
	st := x.st
	p := m.src
	pr := &st.procs[p]
	if pr.cancelled[m.block] > 0 {
		// A forwarded request already consumed this write-back.
		pr.cancelled[m.block]--
		return
	}
	st.mem[m.block] = m.data
	pr.pwbValid[m.block] = false
	pr.pwbData[m.block] = [MaxWords]uint8{}
	d := &st.dirs[m.block]
	if d.state == dOwned && d.owner == p {
		d.state = dUncached
		d.sharers = 0
	} else {
		d.remove(p)
		if d.sharers == 0 && d.state == dShared {
			d.state = dUncached
		}
	}
}

// note mirrors noteMsg.deliver: a clean-flush relinquish or a
// replacement-hint / CU drop notice. Notes do not serialize on busy
// entries (they never touch in-flight transaction state).
func (x *stepCtx) note(m msg) {
	st := x.st
	d := &st.dirs[m.block]
	p := m.src
	if m.aux == auxNoteRelinquish {
		if d.state == dOwned && d.owner == p {
			d.state = dUncached
			d.sharers = 0
			return
		}
	}
	d.remove(p)
	if d.sharers == 0 && d.state == dShared {
		d.state = dUncached
	}
}

// Package mc is an exhaustive bounded model checker for the three
// directory protocols (WI, PU, CU) in internal/proto.
//
// Each protocol's per-block behaviour is expressed as guarded actions
// over an explicit state: per-node cache lines, the full-map directory
// (including its busy/wait-queue serialization), per-channel FIFO
// message queues, memory words, and per-processor operation state. The
// two action families are
//
//   - Issue(p, op): an idle processor with remaining budget starts a
//     read, write, atomic fetch-add, or flush, exactly as the machine
//     layer would drive proto.System; and
//   - Deliver(src, dst): the head message of a non-empty channel is
//     delivered and its handler runs atomically, mirroring the
//     implementation's event-at-a-time execution.
//
// The model preserves exactly the ordering the implementation relies on
// (per-(src,dst) mesh FIFO) and relaxes everything else: memory latency
// and switch timing collapse into the delivery action, so the explored
// interleavings are a superset of what any timing assignment of the real
// mesh can produce. Bounded exhaustive reachability over this space —
// with canonical state encoding for deduplication — checks the
// single-writer, directory-consistency, data-value containment, and
// deadlock/livelock invariants on every reachable state, and the full
// quiescent-state invariant suite (the model analogue of
// proto.CheckCoherence) whenever no message is in flight.
//
// A conformance driver (conformance.go) replays operation schedules
// through the live proto.System and cross-checks the resulting stable
// states against the model, so the model cannot silently drift from the
// code it vouches for. Violations serialize as compact JSON traces
// (trace.go) that replay deterministically as go test regression cases.
package mc

import (
	"fmt"

	"coherencesim/internal/proto"
)

// Hard bounds on the model's configuration. These size the fixed arrays
// in the state representation; the checker is meant for small exhaustive
// configurations, not big simulations.
const (
	MaxProcs  = 4
	MaxBlocks = 2
	MaxWords  = 2
	MaxOps    = 4 // per-processor issue budget
)

// OpKind enumerates the operations a processor may issue.
type OpKind uint8

const (
	OpRead OpKind = iota
	OpWrite
	OpAtomic // fetch-add 1, the shape every construct in the paper uses
	OpFlush
)

func (k OpKind) String() string {
	switch k {
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	case OpAtomic:
		return "atomic"
	case OpFlush:
		return "flush"
	}
	return fmt.Sprintf("OpKind(%d)", uint8(k))
}

// Faults selects deliberate protocol bugs for checker self-tests: each
// produces a counterexample the invariant suite must catch. The zero
// value is the faithful model.
type Faults struct {
	// SkipInvAck: a WI sharer swallows one invalidation without
	// acknowledging; the home waits forever (deadlock).
	SkipInvAck bool
	// GrantBeforeAcks: the WI home grants ownership while invalidations
	// are still in flight (single-writer violation).
	GrantBeforeAcks bool
	// SkipDropNotice: a CU copy self-invalidates at the threshold but
	// never tells the home (stale sharer at quiescence).
	SkipDropNotice bool
	// PhantomRetention: the PU home grants private-block retention
	// without checking that the writer is the sole sharer (exclusive
	// copy alongside other copies).
	PhantomRetention bool
	// StaleUpdateValue: the home multicasts the pre-write value instead
	// of the written one (data-value violation at quiescence).
	StaleUpdateValue bool
}

// Any reports whether any fault is enabled.
func (f Faults) Any() bool {
	return f.SkipInvAck || f.GrantBeforeAcks || f.SkipDropNotice ||
		f.PhantomRetention || f.StaleUpdateValue
}

// Config bounds one exhaustive exploration.
type Config struct {
	Protocol    proto.Protocol
	Procs       int
	Blocks      int
	Words       int
	OpsPerProc  int // issue budget per processor ("depth" of the search)
	CUThreshold uint8
	// DisableRetention mirrors proto.Config.DisableRetention (PU).
	DisableRetention bool
	// OpSet restricts the issue alphabet; empty means all four kinds.
	OpSet []OpKind
	// Faults injects deliberate bugs (checker self-tests only).
	Faults Faults
	// MaxStates aborts the exploration (with an error, never silently)
	// beyond this many distinct states; 0 means unlimited.
	MaxStates int
}

// Validate checks the bounds.
func (c Config) Validate() error {
	switch {
	case c.Procs < 2 || c.Procs > MaxProcs:
		return fmt.Errorf("mc: procs %d out of range [2,%d]", c.Procs, MaxProcs)
	case c.Blocks < 1 || c.Blocks > MaxBlocks:
		return fmt.Errorf("mc: blocks %d out of range [1,%d]", c.Blocks, MaxBlocks)
	case c.Words < 1 || c.Words > MaxWords:
		return fmt.Errorf("mc: words %d out of range [1,%d]", c.Words, MaxWords)
	case c.OpsPerProc < 1 || c.OpsPerProc > MaxOps:
		return fmt.Errorf("mc: ops per proc %d out of range [1,%d]", c.OpsPerProc, MaxOps)
	case c.CUThreshold < 1:
		return fmt.Errorf("mc: CU threshold must be >= 1")
	}
	switch c.Protocol {
	case proto.WI, proto.PU, proto.CU:
	default:
		return fmt.Errorf("mc: unknown protocol %v", c.Protocol)
	}
	return nil
}

// DefaultConfig returns the smoke-slice bounds for a protocol.
func DefaultConfig(p proto.Protocol) Config {
	return Config{
		Protocol:    p,
		Procs:       2,
		Blocks:      1,
		Words:       1,
		OpsPerProc:  2,
		CUThreshold: 4,
	}
}

// opSet returns the effective issue alphabet kinds.
func (c Config) opSet() []OpKind {
	if len(c.OpSet) == 0 {
		return []OpKind{OpRead, OpWrite, OpAtomic, OpFlush}
	}
	return c.OpSet
}

// homeOf mirrors proto.DefaultConfig's block-interleaved home mapping.
func (c Config) homeOf(block uint8) uint8 { return uint8(int(block) % c.Procs) }

// lineState is a model cache line's coherence state.
type lineState uint8

const (
	lInvalid lineState = iota
	lShared
	lExclusive
)

// line is one node's copy of one block. The model's caches hold every
// block without conflict (configurations are far below real capacity),
// so there are no conflict evictions; flushes cover the write-back and
// relinquish paths.
type line struct {
	state lineState
	dirty bool
	ctr   uint8
	data  [MaxWords]uint8
}

// dState is the model directory state, mirroring proto's dirState.
type dState uint8

const (
	dUncached dState = iota
	dShared
	dOwned
)

// pendKind tags the transaction a busy directory entry is carrying.
type pendKind uint8

const (
	pendNone pendKind = iota
	pendRead          // read fetching from a dirty/retained owner
	pendWI            // WI acquisition collecting invalidation acks
	pendWIOwner       // WI acquisition fetching from the old owner
	pendDemote        // PU/CU demoting a retained owner, then resuming
)

// pendTx is the home-side transient state of a multi-message directory
// transaction (the model analogue of the readMsg/wiOp objects parked at
// the home while the entry is busy).
type pendTx struct {
	kind    pendKind
	req     uint8 // requesting node
	word    uint8
	acks    uint8 // WI invalidation acks still outstanding
	hasData bool
	data    [MaxWords]uint8
	resume  msg // pendDemote: the request to re-dispatch afterwards
}

// dir is one block's directory entry, including the busy/wait-queue
// serialization of the implementation.
type dir struct {
	state   dState
	owner   uint8
	sharers uint8 // bitmap over procs
	busy    bool
	pend    pendTx
	waitq   []msg // requests queued behind the busy entry, FIFO
}

func (d *dir) has(p uint8) bool  { return d.sharers&(1<<p) != 0 }
func (d *dir) add(p uint8)       { d.sharers |= 1 << p }
func (d *dir) remove(p uint8)    { d.sharers &^= 1 << p }
func (d *dir) othersMask(p uint8) uint8 { return d.sharers &^ (1 << p) }

// procOp is processor p's single in-flight operation. The model mirrors
// the test/workload harness discipline: a processor issues its next
// operation only after the previous one has fully completed (retired and
// drained of acknowledgements), matching release-consistency fences.
type procOp struct {
	active  bool
	kind    OpKind
	block   uint8
	word    uint8
	val uint8 // write value (assigned at issue)
	// Update-protocol acknowledgement accounting (the updTx analogue;
	// one per processor since operations are serialized per processor).
	txActive  bool
	txReplied bool
	txExp     uint8
	txGot     uint8
}

// proc is one processor's model state.
type proc struct {
	op     procOp
	issued uint8
	// pendingWB / cancelledWB mirror proto.procState: dirty data evicted
	// by a flush but not yet arrived at the home.
	pwbValid  [MaxBlocks]bool
	pwbData   [MaxBlocks][MaxWords]uint8
	cancelled [MaxBlocks]uint8
}

// msgKind enumerates the protocol messages.
type msgKind uint8

const (
	mNone msgKind = iota
	mReadReq        // requester -> home: read miss (also write-allocate fetch)
	mReadOwnerFetch // home -> owner: fetch for a read (demote to shared)
	mReadOwnerData  // owner -> home: data back
	mReadReply      // home -> requester: block data, install shared
	mWIReq          // requester -> home: WI ownership request (write/atomic)
	mInv            // home -> sharer: invalidate
	mInvAck         // sharer -> home: invalidation acknowledged
	mWIOwnerFetch   // home -> old owner: fetch and invalidate
	mWIOwnerData    // owner -> home: data back
	mGrant          // home -> requester: ownership grant (data optional)
	mWTReq          // writer -> home: PU/CU write-through (word, value)
	mUpd            // home -> sharer: update (word, value, writer)
	mUpdAck         // sharer -> writer: update acknowledged
	mWTReply        // home -> writer: write-through reply (expected acks)
	mAtomReq        // requester -> home: PU/CU atomic fetch-add
	mAtomReply      // home -> requester: old value (+ block for new sharer)
	mWB             // evictor -> home: dirty write-back (block data)
	mNote           // node -> home: drop notice / replacement hint / relinquish
	mDemote         // home -> owner: demote retained block to shared
	mDemoteData     // owner -> home: demoted data back
)

func (k msgKind) String() string {
	names := [...]string{"none", "read-req", "read-owner-fetch", "read-owner-data",
		"read-reply", "wi-req", "inv", "inv-ack", "wi-owner-fetch", "wi-owner-data",
		"grant", "wt-req", "upd", "upd-ack", "wt-reply", "atom-req", "atom-reply",
		"wb", "note", "demote", "demote-data"}
	if int(k) < len(names) {
		return names[k]
	}
	return fmt.Sprintf("msgKind(%d)", uint8(k))
}

// msg is one in-flight protocol message. src/dst are implicit in the
// channel holding it; they are kept for waitq entries and traces.
type msg struct {
	kind    msgKind
	src     uint8
	dst     uint8
	block   uint8
	word    uint8
	val     uint8 // written value (mWTReq/mWTReply/mUpd), old value (mAtomReply)
	val2    uint8 // new value (mAtomReply)
	aux     uint8 // writer id (mUpd), expected-ack count (replies), flags (below)
	hasData bool
	data    [MaxWords]uint8
}

// aux flag values for mNote and mReadReq / mAtomReq.
const (
	auxNoteDrop       = 0 // replacement hint / CU drop notice
	auxNoteRelinquish = 1 // clean-flush relinquish
	auxNeedData       = 1 // mAtomReq: requester holds no copy
)

// state is one global model state. All fields are value types except the
// waitq and channel slices, which clone() copies deeply.
type state struct {
	procs [MaxProcs]proc
	lines [MaxProcs][MaxBlocks]line
	dirs  [MaxBlocks]dir
	mem   [MaxBlocks][MaxWords]uint8
	// hist is the data-value containment invariant's bookkeeping: a
	// bitset (over the bounded value domain) of every value that has
	// legitimately existed for the word — initial zero, issued write
	// values, and atomic results. Monotone, so it is part of the state.
	hist [MaxBlocks][MaxWords]uint64
	// chans[src][dst] is the FIFO channel between two nodes, mirroring
	// the mesh's same-pair delivery order guarantee.
	chans [MaxProcs][MaxProcs][]msg
}

// newState returns the initial state: empty caches, uncached directory,
// zeroed memory, with the zero value recorded as legal for every word.
func newState(cfg Config) *state {
	st := &state{}
	for b := 0; b < cfg.Blocks; b++ {
		for w := 0; w < cfg.Words; w++ {
			st.hist[b][w] = 1 // bit 0: the initial zero
		}
	}
	return st
}

// clone deep-copies the state.
func (st *state) clone() *state {
	ns := &state{}
	*ns = *st
	for b := range ns.dirs {
		if q := st.dirs[b].waitq; len(q) > 0 {
			ns.dirs[b].waitq = append([]msg(nil), q...)
		}
	}
	for s := range ns.chans {
		for d := range ns.chans[s] {
			if q := st.chans[s][d]; len(q) > 0 {
				ns.chans[s][d] = append([]msg(nil), q...)
			}
		}
	}
	return ns
}

// send appends m to the (src,dst) channel.
func (st *state) send(m msg) { st.chans[m.src][m.dst] = append(st.chans[m.src][m.dst], m) }

// inFlight counts all queued messages.
func (st *state) inFlight(cfg Config) int {
	n := 0
	for s := 0; s < cfg.Procs; s++ {
		for d := 0; d < cfg.Procs; d++ {
			n += len(st.chans[s][d])
		}
	}
	return n
}

// quiescent reports whether no message is in flight and no operation is
// pending — the stable states on which the full invariant suite runs.
func (st *state) quiescent(cfg Config) bool {
	if st.inFlight(cfg) > 0 {
		return false
	}
	for p := 0; p < cfg.Procs; p++ {
		if st.procs[p].op.active {
			return false
		}
	}
	return true
}

// recordValue marks v as a legitimate value for (block, word). Values
// beyond the bitset width would make the containment invariant silently
// vacuous, so they are rejected by Config bounds: write values are
// issue-indexed (< Procs*OpsPerProc + 16) and atomic results increment
// from recorded values, bounded by the total operation budget.
func (st *state) recordValue(block, word uint8, v uint8) {
	if v >= 64 {
		panic(fmt.Sprintf("mc: value %d exceeds containment bitset", v))
	}
	st.hist[block][word] |= 1 << v
}

// valueLegal reports whether v has ever legitimately existed for the word.
func (st *state) valueLegal(block, word uint8, v uint8) bool {
	if v >= 64 {
		return false
	}
	return st.hist[block][word]&(1<<v) != 0
}

// writeValue returns the value processor p's i-th issued operation
// writes: unique per (processor, slot) so the containment invariant can
// attribute every byte it sees, and identical across schedules touching
// the same slot so canonical deduplication stays effective.
func writeValue(cfg Config, p, issued uint8) uint8 {
	return uint8(int(p)*cfg.OpsPerProc+int(issued)) + 1
}

package mc

import (
	"fmt"

	"coherencesim/internal/cache"
	"coherencesim/internal/classify"
	"coherencesim/internal/proto"
	"coherencesim/internal/sim"
)

// The conformance driver is the bridge that keeps the model honest: it
// replays operation schedules through BOTH the model and the live
// proto.System on the real simulation engine, drains each operation to
// quiescence, and cross-checks the full stable state (directory, cache
// lines, memory, and the values reads/atomics returned) after every
// operation. Schedules are sequential — one operation completes before
// the next issues — so both sides process exactly one transaction at a
// time and their stable states must agree field for field; any
// divergence means the model has drifted from the code it vouches for.

// ScheduleOp is one operation of a sequential conformance schedule.
type ScheduleOp struct {
	P           int
	Kind        OpKind
	Block, Word int
}

func (o ScheduleOp) String() string {
	return fmt.Sprintf("p%d %v b%d.w%d", o.P, o.Kind, o.Block, o.Word)
}

// Schedule is a sequential operation schedule.
type Schedule []ScheduleOp

func (s Schedule) String() string {
	out := ""
	for i, o := range s {
		if i > 0 {
			out += "; "
		}
		out += o.String()
	}
	return out
}

// runModelSchedule executes a schedule sequentially on the model:
// each operation issues and then every message drains in deterministic
// (src, dst)-ascending order before the next issues. Returns the final
// state and the observed read/atomic results.
func runModelSchedule(cfg Config, sched Schedule) (*state, *observer, error) {
	st := newState(cfg)
	obs := &observer{}
	for i, op := range sched {
		x := &stepCtx{cfg: cfg, st: st, obs: obs}
		x.apply(action{issue: true, p: uint8(op.P), kind: op.Kind, block: uint8(op.Block), word: uint8(op.Word)})
		if x.err != "" {
			return nil, nil, fmt.Errorf("op %d (%v): %s", i, op, x.err)
		}
		for st.inFlight(cfg) > 0 {
			delivered := false
			for s := 0; s < cfg.Procs && !delivered; s++ {
				for d := 0; d < cfg.Procs && !delivered; d++ {
					if len(st.chans[s][d]) > 0 {
						x.deliver(uint8(s), uint8(d))
						delivered = true
					}
				}
			}
			if x.err != "" {
				return nil, nil, fmt.Errorf("op %d (%v) drain: %s", i, op, x.err)
			}
		}
		if !st.quiescent(cfg) {
			return nil, nil, fmt.Errorf("op %d (%v): drained but not quiescent", i, op)
		}
		if why := checkEvery(cfg, st); why != "" {
			return nil, nil, fmt.Errorf("op %d (%v): %s", i, op, why)
		}
		if why := checkQuiescent(cfg, st); why != "" {
			return nil, nil, fmt.Errorf("op %d (%v): %s", i, op, why)
		}
	}
	return st, obs, nil
}

// liveRunner drives a real proto.System one sequential operation at a
// time, reusing the engine and system across schedules via Reset.
type liveRunner struct {
	cfg Config
	e   *sim.Engine
	s   *proto.System
	// issued mirrors the model's per-processor issue counters so write
	// values match writeValue().
	issued [MaxProcs]uint8
	obs    observer
}

func newLiveRunner(cfg Config) *liveRunner {
	r := &liveRunner{cfg: cfg}
	r.e = sim.NewEngine()
	r.s = proto.NewSystem(r.e, cfg.Procs, r.protoConfig(), classify.New(cfg.Procs))
	return r
}

func (r *liveRunner) protoConfig() proto.Config {
	pc := proto.DefaultConfig(r.cfg.Protocol, r.cfg.Procs)
	pc.CUThreshold = r.cfg.CUThreshold
	pc.DisableRetention = r.cfg.DisableRetention
	return pc
}

// reset returns the runner to the initial state for the next schedule.
func (r *liveRunner) reset() error {
	if !r.e.Reset() {
		return fmt.Errorf("mc: engine refused reset (live coroutines)")
	}
	r.s.Reset(r.protoConfig())
	r.issued = [MaxProcs]uint8{}
	r.obs = observer{}
	return nil
}

// step runs one operation to full quiescence on the real engine.
func (r *liveRunner) step(op ScheduleOp) error {
	addr := cache.Addr(uint32(op.Block)*cache.BlockBytes + uint32(op.Word)*cache.WordBytes)
	p := op.P
	switch op.Kind {
	case OpRead:
		r.e.Schedule(0, func() {
			r.s.Read(p, addr, func(v uint32) { r.obs.readVals = append(r.obs.readVals, uint8(v)) })
		})
	case OpWrite:
		v := uint32(writeValue(r.cfg, uint8(p), r.issued[p]))
		r.e.Schedule(0, func() { r.s.Write(p, addr, v, func() {}) })
	case OpAtomic:
		r.e.Schedule(0, func() {
			r.s.Atomic(p, addr, proto.FetchAdd, 1, 0, func(old uint32) {
				r.obs.atomOlds = append(r.obs.atomOlds, uint8(old))
			})
		})
	case OpFlush:
		r.e.Schedule(0, func() { r.s.FlushBlock(p, addr, func() {}) })
	default:
		return fmt.Errorf("mc: unknown schedule op kind %v", op.Kind)
	}
	r.issued[p]++
	r.e.Run() // drains every message before the next operation issues
	return nil
}

// compareStable cross-checks the model state against the live system at
// quiescence, returning a description of the first divergence or "".
func compareStable(cfg Config, st *state, s *proto.System) string {
	for b := 0; b < cfg.Blocks; b++ {
		bd := s.DumpBlock(uint32(b))
		d := &st.dirs[b]
		wantDir := map[dState]proto.DirState{dUncached: proto.DirUncached, dShared: proto.DirShared, dOwned: proto.DirOwned}[d.state]
		if bd.Dir.State != wantDir {
			return fmt.Sprintf("block %d: dir state impl=%v model=%v", b, bd.Dir.State, wantDir)
		}
		if bd.Dir.Busy || bd.Dir.Queued != 0 {
			return fmt.Sprintf("block %d: impl dir busy/queued at quiescence", b)
		}
		if d.state == dOwned && bd.Dir.Owner != int(d.owner) {
			return fmt.Sprintf("block %d: owner impl=p%d model=p%d", b, bd.Dir.Owner, d.owner)
		}
		if uint8(bd.Dir.Sharers) != d.sharers || bd.Dir.Sharers>>uint(cfg.Procs) != 0 {
			return fmt.Sprintf("block %d: sharers impl=%#x model=%#x", b, bd.Dir.Sharers, d.sharers)
		}
		for w := 0; w < cfg.Words; w++ {
			if uint8(bd.Memory[w]) != st.mem[b][w] || bd.Memory[w] >= 64 {
				return fmt.Sprintf("block %d word %d: memory impl=%d model=%d", b, w, bd.Memory[w], st.mem[b][w])
			}
		}
		for p := 0; p < cfg.Procs; p++ {
			ld := bd.Lines[p]
			ln := &st.lines[p][b]
			if ld.Present != (ln.state != lInvalid) {
				return fmt.Sprintf("block %d p%d: present impl=%v model=%v", b, p, ld.Present, ln.state != lInvalid)
			}
			if !ld.Present {
				continue
			}
			wantState := map[lineState]cache.State{lShared: cache.Shared, lExclusive: cache.Exclusive}[ln.state]
			if ld.State != wantState {
				return fmt.Sprintf("block %d p%d: line state impl=%v model=%v", b, p, ld.State, wantState)
			}
			if ld.Dirty != ln.dirty {
				return fmt.Sprintf("block %d p%d: dirty impl=%v model=%v", b, p, ld.Dirty, ln.dirty)
			}
			if ld.Counter != ln.ctr {
				return fmt.Sprintf("block %d p%d: CU counter impl=%d model=%d", b, p, ld.Counter, ln.ctr)
			}
			for w := 0; w < cfg.Words; w++ {
				if uint8(ld.Data[w]) != ln.data[w] || ld.Data[w] >= 64 {
					return fmt.Sprintf("block %d p%d word %d: data impl=%d model=%d", b, p, w, ld.Data[w], ln.data[w])
				}
			}
		}
	}
	return ""
}

// compareObs cross-checks observed read/atomic results.
func compareObs(model, impl *observer) string {
	if len(model.readVals) != len(impl.readVals) {
		return fmt.Sprintf("read count model=%d impl=%d", len(model.readVals), len(impl.readVals))
	}
	for i := range model.readVals {
		if model.readVals[i] != impl.readVals[i] {
			return fmt.Sprintf("read %d returned impl=%d model=%d", i, impl.readVals[i], model.readVals[i])
		}
	}
	if len(model.atomOlds) != len(impl.atomOlds) {
		return fmt.Sprintf("atomic count model=%d impl=%d", len(model.atomOlds), len(impl.atomOlds))
	}
	for i := range model.atomOlds {
		if model.atomOlds[i] != impl.atomOlds[i] {
			return fmt.Sprintf("atomic %d returned impl=%d model=%d", i, impl.atomOlds[i], model.atomOlds[i])
		}
	}
	return ""
}

// RunConformance replays every schedule through both the model and the
// live implementation, comparing stable states after each operation.
// Returns the number of schedules checked; the error identifies the
// first diverging schedule.
func RunConformance(cfg Config, scheds []Schedule) (int, error) {
	if cfg.CUThreshold == 0 {
		cfg.CUThreshold = 4
	}
	if err := cfg.Validate(); err != nil {
		return 0, err
	}
	runner := newLiveRunner(cfg)
	for i, sched := range scheds {
		if i > 0 {
			if err := runner.reset(); err != nil {
				return i, err
			}
		}
		st := newState(cfg)
		obs := &observer{}
		for j, op := range sched {
			// Model side: issue, then deterministic drain.
			x := &stepCtx{cfg: cfg, st: st, obs: obs}
			x.apply(action{issue: true, p: uint8(op.P), kind: op.Kind, block: uint8(op.Block), word: uint8(op.Word)})
			for x.err == "" && st.inFlight(cfg) > 0 {
				delivered := false
				for s := 0; s < cfg.Procs && !delivered; s++ {
					for d := 0; d < cfg.Procs && !delivered; d++ {
						if len(st.chans[s][d]) > 0 {
							x.deliver(uint8(s), uint8(d))
							delivered = true
						}
					}
				}
			}
			if x.err != "" {
				return i, fmt.Errorf("schedule %d (%v) op %d: model error: %s", i, sched, j, x.err)
			}
			// Live side: same operation, engine drained.
			if err := runner.step(op); err != nil {
				return i, fmt.Errorf("schedule %d (%v) op %d: %v", i, sched, j, err)
			}
			if why := compareStable(cfg, st, runner.s); why != "" {
				return i, fmt.Errorf("schedule %d (%v) op %d (%v): %s", i, sched, j, op, why)
			}
		}
		if why := compareObs(obs, &runner.obs); why != "" {
			return i, fmt.Errorf("schedule %d (%v): %s", i, sched, why)
		}
		if errs := runner.s.CheckCoherence(); len(errs) > 0 {
			return i, fmt.Errorf("schedule %d (%v): impl coherence check: %v", i, sched, errs[0])
		}
	}
	return len(scheds), nil
}

// GenerateSchedules enumerates sequential schedules over the config's
// operation alphabet: every length-1 and length-2 schedule, then
// length-3 schedules strided deterministically until at least target
// schedules exist. Exhaustive short prefixes catch pairwise
// interactions; the strided tail adds three-op chains (e.g. populate,
// race, verify) without exploding the count.
func GenerateSchedules(cfg Config, target int) []Schedule {
	var alphabet []ScheduleOp
	for p := 0; p < cfg.Procs; p++ {
		for _, k := range cfg.opSet() {
			for b := 0; b < cfg.Blocks; b++ {
				if k == OpFlush {
					alphabet = append(alphabet, ScheduleOp{P: p, Kind: k, Block: b})
					continue
				}
				for w := 0; w < cfg.Words; w++ {
					alphabet = append(alphabet, ScheduleOp{P: p, Kind: k, Block: b, Word: w})
				}
			}
		}
	}
	n := len(alphabet)
	var out []Schedule
	for i := 0; i < n; i++ {
		out = append(out, Schedule{alphabet[i]})
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			out = append(out, Schedule{alphabet[i], alphabet[j]})
		}
	}
	total3 := n * n * n
	stride := 1
	if missing := target - len(out); missing > 0 {
		stride = total3 / missing
		if stride < 1 {
			stride = 1
		}
	}
	for idx := 0; idx < total3 && len(out) < target; idx += stride {
		i, rest := idx/(n*n), idx%(n*n)
		out = append(out, Schedule{alphabet[i], alphabet[rest/n], alphabet[rest%n]})
	}
	return out
}

package mc

import (
	"fmt"
	"sort"

	"coherencesim/internal/trace"
)

// ViolationKind classifies what an exploration found.
type ViolationKind string

const (
	VInvariant ViolationKind = "invariant" // every-state invariant broken
	VQuiescent ViolationKind = "quiescent" // stable-state invariant broken
	VDeadlock  ViolationKind = "deadlock"  // terminal state with unfinished work
	VLivelock  ViolationKind = "livelock"  // cycle reachable on the search path
	VInternal  ViolationKind = "internal"  // model handler hit an impossible case
)

// Violation is one counterexample: the schedule of actions from the
// initial state to the violating state.
type Violation struct {
	Kind   ViolationKind
	Detail string
	Trace  Trace
}

func (v *Violation) String() string {
	return fmt.Sprintf("%s: %s (schedule of %d actions)", v.Kind, v.Detail, len(v.Trace.Actions))
}

// Result summarizes one bounded-exhaustive exploration.
type Result struct {
	Config      Config
	States      int // distinct reachable states
	Transitions int // actions applied (edges, including duplicates)
	Quiescent   int // distinct quiescent states
	Terminal    int // distinct terminal states (no enabled action)
	MaxDepth    int // longest simple path explored
	Violations  []*Violation
}

// frame is one iterative-DFS stack entry.
type frame struct {
	st   *state
	acts []action
	next int    // index of the next action to try
	act  action // the action that produced this frame (from its parent)
	key  string // canonical encoding, for the on-path cycle check
}

// Explore runs bounded exhaustive reachability from the initial state
// under cfg, checking invariants on every distinct state. It returns
// the exploration summary; violations (each with a replayable trace)
// are collected rather than aborting, but exploration stops after
// maxViolations distinct ones to keep counterexamples small and fast.
//
// The search is a depth-first walk deduplicated on canonical state
// encodings. Livelock detection uses the DFS path: revisiting a state
// that is on the current path is a cycle every fair scheduler could
// traverse forever. Because actions in this model always consume either
// issue budget or a message — and every handler sends at most a bounded
// number of messages per consumed one — true cycles indicate a protocol
// that can regenerate its own work, which the faithful model never does.
func Explore(cfg Config) (*Result, error) {
	if cfg.CUThreshold == 0 {
		cfg.CUThreshold = 4
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	const maxViolations = 1

	res := &Result{Config: cfg}
	visited := make(map[string]struct{})
	onPath := make(map[string]int)

	root := newState(cfg)
	rootKey := string(encode(cfg, root, nil))
	visited[rootKey] = struct{}{}
	stack := []*frame{{st: root, acts: enabledActions(cfg, root), key: rootKey}}
	onPath[rootKey] = 0
	res.States = 1

	record := func(kind ViolationKind, detail string) {
		res.Violations = append(res.Violations, &Violation{
			Kind:   kind,
			Detail: detail,
			Trace:  traceOf(cfg, stack),
		})
	}

	// Check the root too (trivially fine for the faithful model).
	if why := checkEvery(cfg, root); why != "" {
		record(VInvariant, why)
		return res, nil
	}
	res.Quiescent++ // the initial state is quiescent by construction

	for len(stack) > 0 {
		top := stack[len(stack)-1]
		if top.next >= len(top.acts) {
			if len(top.acts) == 0 {
				res.Terminal++
				if why := checkDeadlock(cfg, top.st); why != "" {
					record(VDeadlock, why)
					if len(res.Violations) >= maxViolations {
						return res, nil
					}
				}
			}
			delete(onPath, top.key)
			stack = stack[:len(stack)-1]
			continue
		}
		a := top.acts[top.next]
		top.next++

		child := top.st.clone()
		x := &stepCtx{cfg: cfg, st: child}
		x.apply(a)
		res.Transitions++
		key := string(encode(cfg, child, nil))

		// Push a provisional frame so traceOf sees the full schedule.
		stack = append(stack, &frame{st: child, act: a, key: key})
		if x.err != "" {
			record(VInternal, x.err)
			if len(res.Violations) >= maxViolations {
				return res, nil
			}
			stack = stack[:len(stack)-1]
			continue
		}
		if _, seen := visited[key]; seen {
			if _, cycle := onPath[key]; cycle {
				record(VLivelock, "state revisits itself along the schedule (protocol can cycle forever)")
				if len(res.Violations) >= maxViolations {
					return res, nil
				}
			}
			stack = stack[:len(stack)-1]
			continue
		}
		visited[key] = struct{}{}
		res.States++
		if cfg.MaxStates > 0 && res.States > cfg.MaxStates {
			return nil, fmt.Errorf("mc: exploration exceeded MaxStates=%d (state space too large for the configured bounds)", cfg.MaxStates)
		}
		if d := len(stack) - 1; d > res.MaxDepth {
			res.MaxDepth = d
		}

		if why := checkEvery(cfg, child); why != "" {
			record(VInvariant, why)
			if len(res.Violations) >= maxViolations {
				return res, nil
			}
			stack = stack[:len(stack)-1]
			continue
		}
		if child.quiescent(cfg) {
			res.Quiescent++
			if why := checkQuiescent(cfg, child); why != "" {
				record(VQuiescent, why)
				if len(res.Violations) >= maxViolations {
					return res, nil
				}
				stack = stack[:len(stack)-1]
				continue
			}
		}
		top = stack[len(stack)-1]
		top.acts = enabledActions(cfg, child)
		onPath[top.key] = len(stack) - 1
	}
	return res, nil
}

// traceOf serializes the schedule along the current DFS stack.
func traceOf(cfg Config, stack []*frame) Trace {
	t := Trace{
		Envelope: trace.Envelope{
			Schema:   trace.TraceSchemaVersion,
			Kind:     "counterexample",
			Protocol: cfg.Protocol.String(),
		},
		Procs:            cfg.Procs,
		Blocks:           cfg.Blocks,
		Words:            cfg.Words,
		OpsPerProc:       cfg.OpsPerProc,
		CUThreshold:      cfg.CUThreshold,
		DisableRetention: cfg.DisableRetention,
		Faults:           cfg.Faults,
	}
	for _, k := range cfg.OpSet {
		t.OpSet = append(t.OpSet, k.String())
	}
	for _, f := range stack[1:] { // stack[0] is the initial state
		t.Actions = append(t.Actions, encodeAction(f.act))
	}
	return t
}

// ExploreMatrix explores every combination in the given axis lists,
// returning results keyed deterministically in axis order.
func ExploreMatrix(base Config, procs, blocks []int) ([]*Result, error) {
	sort.Ints(procs)
	sort.Ints(blocks)
	var out []*Result
	for _, p := range procs {
		for _, b := range blocks {
			cfg := base
			cfg.Procs = p
			cfg.Blocks = b
			r, err := Explore(cfg)
			if err != nil {
				return out, err
			}
			out = append(out, r)
		}
	}
	return out, nil
}

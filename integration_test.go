package coherencesim

import (
	"fmt"
	"testing"

	"coherencesim/internal/runner"
)

// Integration tests: complete parallel applications combining several
// constructs, verified for functional correctness under every protocol
// and machine size, with the protocol invariant checker run at the end.
//
// Each (protocol, size) combination is an independent simulation, so the
// matrices fan out through the runner pool. Jobs return failure messages
// instead of calling into *testing.T so every assertion happens on the
// test goroutine; under -race this also exercises the pool ↔ simulation
// interaction.

// fanOut runs one job per combination and reports the failures each
// returns, prefixed with the combination's label.
func fanOut(t *testing.T, labels []string, runs []func() []string) {
	t.Helper()
	jobs := make([]runner.Job[[]string], len(runs))
	for i := range runs {
		jobs[i] = runner.Job[[]string]{Label: labels[i], Run: runs[i]}
	}
	for i, fails := range runner.Map(runner.New(4), jobs) {
		for _, f := range fails {
			t.Errorf("%s: %s", labels[i], f)
		}
	}
}

// coherenceErrors renders the invariant checker's findings.
func coherenceErrors(m *Machine) []string {
	var out []string
	for _, e := range m.System().CheckCoherence() {
		out = append(out, e.Error())
	}
	return out
}

// coherentPeek reads a word's current global value (memory, or a dirty
// cached copy under WI).
func coherentPeek(m *Machine, a Addr) uint32 {
	v := m.Peek(a)
	for q := 0; q < m.Procs(); q++ {
		if ln := m.System().Cache(q).Lookup(uint32(a / 64)); ln != nil && ln.Dirty {
			v = ln.Data[(a%64)/4]
		}
	}
	return v
}

// TestParallelHistogram bins values into a shared histogram protected by
// per-bin locks, with a barrier separating fill and verify phases.
func TestParallelHistogram(t *testing.T) {
	const bins = 4
	const perProc = 32
	run := func(pr Protocol, procs int) []string {
		var fails []string
		m := NewMachine(DefaultConfig(pr, procs))
		hist := make([]Addr, bins)
		locks := make([]Lock, bins)
		for b := 0; b < bins; b++ {
			hist[b] = m.Alloc(fmt.Sprintf("bin%d", b), 4, b%procs)
			locks[b] = NewMCSLock(m, fmt.Sprintf("L%d", b), false)
		}
		bar := NewDisseminationBarrier(m, "B")
		total := m.Alloc("total", 4, 0)

		m.Run(func(p *Proc) {
			for i := 0; i < perProc; i++ {
				b := (p.ID() + i) % bins
				locks[b].Acquire(p)
				v := p.Read(hist[b])
				p.Write(hist[b], v+1)
				locks[b].Release(p)
			}
			bar.Wait(p)
			if p.ID() == 0 {
				sum := uint32(0)
				for b := 0; b < bins; b++ {
					sum += p.Read(hist[b])
				}
				p.Write(total, sum)
			}
			bar.Wait(p)
			// Every processor observes the published total. Sim procs run
			// in strict alternation, so the append is race-free.
			if got := p.Read(total); got != uint32(procs*perProc) {
				fails = append(fails, fmt.Sprintf("proc %d read total %d, want %d",
					p.ID(), got, procs*perProc))
			}
		})
		return append(fails, coherenceErrors(m)...)
	}

	var labels []string
	var runs []func() []string
	for _, pr := range []Protocol{WI, PU, CU} {
		for _, procs := range []int{2, 8, 16} {
			pr, procs := pr, procs
			labels = append(labels, fmt.Sprintf("histogram/%v/p%d", pr, procs))
			runs = append(runs, func() []string { return run(pr, procs) })
		}
	}
	fanOut(t, labels, runs)
}

// TestIterativeSolver mimics a BSP iterative solver: local relaxation,
// halo exchange through shared strips, a max-residual reduction, and a
// convergence broadcast — every construct class in one program.
func TestIterativeSolver(t *testing.T) {
	run := func(pr Protocol) []string {
		const procs = 8
		const sweeps = 6
		var fails []string
		m := NewMachine(DefaultConfig(pr, procs))
		strips := make([]Addr, procs)
		for i := range strips {
			strips[i] = m.Alloc(fmt.Sprintf("strip%d", i), 64, i)
			m.Poke(strips[i], uint32(100+i))
		}
		bar := NewTreeBarrier(m, "B")
		red := NewSequentialReducer(m, "R", m.NewMagicBarrier())

		residuals := make([][]uint32, procs)
		m.Run(func(p *Proc) {
			id := p.ID()
			for s := 0; s < sweeps; s++ {
				left := p.Read(strips[(id+procs-1)%procs])
				right := p.Read(strips[(id+1)%procs])
				p.Compute(16)
				val := (left + right) / 2
				p.Write(strips[id], val)
				bar.Wait(p)
				red.Reduce(p, val)
				max := p.Read(red.ResultAddr())
				residuals[id] = append(residuals[id], max)
				bar.Wait(p)
			}
		})
		// All processors must have observed identical reduction results
		// each sweep.
		for s := 0; s < sweeps; s++ {
			for id := 1; id < procs; id++ {
				if residuals[id][s] != residuals[0][s] {
					fails = append(fails, fmt.Sprintf("sweep %d: proc %d saw %d, proc 0 saw %d",
						s, id, residuals[id][s], residuals[0][s]))
				}
			}
		}
		return append(fails, coherenceErrors(m)...)
	}

	var labels []string
	var runs []func() []string
	for _, pr := range []Protocol{WI, PU, CU} {
		pr := pr
		labels = append(labels, "solver/"+pr.String())
		runs = append(runs, func() []string { return run(pr) })
	}
	fanOut(t, labels, runs)
}

// TestProducerConsumerPipeline passes tokens through a chain of
// single-word mailboxes using spin waits, the pattern underlying flag
// synchronization.
func TestProducerConsumerPipeline(t *testing.T) {
	run := func(pr Protocol) []string {
		const procs = 8
		const tokens = 20
		m := NewMachine(DefaultConfig(pr, procs))
		boxes := make([]Addr, procs)
		for i := range boxes {
			boxes[i] = m.Alloc(fmt.Sprintf("box%d", i), 4, i)
		}
		sink := m.Alloc("sink", 4, procs-1)

		m.Run(func(p *Proc) {
			id := p.ID()
			for k := 1; k <= tokens; k++ {
				if id == 0 {
					// Produce token k into box 0 once it is free.
					p.SpinUntil(boxes[0], func(v uint32) bool { return v == 0 })
					p.Fence()
					p.Write(boxes[0], uint32(k))
					continue
				}
				// Stage id: take token from the previous box, pass on.
				v := p.SpinUntil(boxes[id-1], func(v uint32) bool { return v != 0 })
				p.Fence()
				p.Write(boxes[id-1], 0) // free the upstream box
				if id == procs-1 {
					acc := p.Read(sink)
					p.Write(sink, acc+v)
				} else {
					p.SpinUntil(boxes[id], func(v uint32) bool { return v == 0 })
					p.Write(boxes[id], v)
				}
			}
		})
		var fails []string
		want := uint32(tokens * (tokens + 1) / 2)
		if got := coherentPeek(m, sink); got != want {
			fails = append(fails, fmt.Sprintf("sink = %d, want %d", got, want))
		}
		return append(fails, coherenceErrors(m)...)
	}

	var labels []string
	var runs []func() []string
	for _, pr := range []Protocol{WI, PU, CU} {
		pr := pr
		labels = append(labels, "pipeline/"+pr.String())
		runs = append(runs, func() []string { return run(pr) })
	}
	fanOut(t, labels, runs)
}

// TestAllConstructsOneProgram runs every lock, barrier, and reducer in a
// single program as a smoke-level compatibility matrix.
func TestAllConstructsOneProgram(t *testing.T) {
	run := func(pr Protocol) []string {
		m := NewMachine(DefaultConfig(pr, 8))
		locks := []Lock{
			NewTicketLock(m, "tk"),
			NewMCSLock(m, "mcs", false),
			NewMCSLock(m, "uc", true),
			NewTASLock(m, "tas"),
			NewTTASLock(m, "ttas"),
		}
		barriers := []Barrier{
			NewCentralBarrier(m, "cb"),
			NewDisseminationBarrier(m, "db"),
			NewTreeBarrier(m, "tb"),
		}
		// One counter per lock: different locks do not exclude each other.
		ctrs := make([]Addr, len(locks))
		for i := range ctrs {
			ctrs[i] = m.Alloc(fmt.Sprintf("ctr%d", i), 4, 0)
		}
		m.Run(func(p *Proc) {
			for i, l := range locks {
				l.Acquire(p)
				v := p.Read(ctrs[i])
				p.Write(ctrs[i], v+1)
				l.Release(p)
			}
			for _, b := range barriers {
				b.Wait(p)
			}
		})
		var fails []string
		for i := range locks {
			if got := coherentPeek(m, ctrs[i]); got != 8 {
				fails = append(fails, fmt.Sprintf("counter %d = %d, want 8", i, got))
			}
		}
		return append(fails, coherenceErrors(m)...)
	}

	var labels []string
	var runs []func() []string
	for _, pr := range []Protocol{WI, PU, CU} {
		pr := pr
		labels = append(labels, "allconstructs/"+pr.String())
		runs = append(runs, func() []string { return run(pr) })
	}
	fanOut(t, labels, runs)
}

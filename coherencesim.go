// Package coherencesim is an execution-driven simulator of a DASH-like
// CC-NUMA multiprocessor built to reproduce Bianchini, Carrera &
// Kontothanassis, "The Interaction of Parallel Programming Constructs
// and Coherence Protocols" (PPoPP 1997).
//
// It models a 32-node (configurable 1-64) machine — processors with
// 4-entry write buffers, 64-KB direct-mapped caches with 64-byte blocks,
// per-node memory with a full-map directory, and a wormhole-routed 2D
// mesh — under three coherence protocols: write-invalidate (WI), pure
// update (PU), and competitive update (CU). On top of the machine it
// provides the paper's parallel programming constructs (ticket, MCS, and
// update-conscious MCS locks; centralized, dissemination, and tree
// barriers; parallel and sequential reductions), the paper's synthetic
// workloads, and drivers that regenerate every figure of the paper's
// evaluation, including the miss and update-message classification the
// paper uses as its central metric.
//
// Quick start:
//
//	cfg := coherencesim.DefaultConfig(coherencesim.PU, 8)
//	m := coherencesim.NewMachine(cfg)
//	lock := coherencesim.NewTicketLock(m, "L")
//	counter := m.Alloc("counter", 4, 0)
//	res := m.Run(func(p *coherencesim.Proc) {
//		for i := 0; i < 100; i++ {
//			lock.Acquire(p)
//			v := p.Read(counter)
//			p.Write(counter, v+1)
//			lock.Release(p)
//		}
//	})
//	fmt.Println(res.Cycles, res.Updates.Useful())
//
// The package is a facade over the internal implementation packages;
// everything needed to build and measure workloads is re-exported here.
package coherencesim

import (
	"coherencesim/internal/apps"
	"coherencesim/internal/classify"
	"coherencesim/internal/constructs"
	"coherencesim/internal/experiments"
	"coherencesim/internal/machine"
	"coherencesim/internal/metrics"
	"coherencesim/internal/proto"
	"coherencesim/internal/runner"
	"coherencesim/internal/trace"
	"coherencesim/internal/workload"
)

// Protocol selects the coherence protocol of a simulated machine.
type Protocol = proto.Protocol

// The three protocols the paper studies.
const (
	WI = proto.WI // write-invalidate (DASH-like, release consistency)
	PU = proto.PU // pure update (write-through with retention)
	CU = proto.CU // competitive update (threshold-4 self-invalidation)
)

// Machine is a simulated multiprocessor; Proc is one simulated processor.
type (
	Machine = machine.Machine
	Proc    = machine.Proc
	Config  = machine.Config
	Result  = machine.Result
	Addr    = machine.Addr
)

// NewMachine builds a simulated machine.
func NewMachine(cfg Config) *Machine { return machine.New(cfg) }

// AcquireMachine returns a machine configured per cfg from the shared
// reuse pool — a structurally compatible idle machine reset to cfg when
// one is available, else a fresh one. Pair with Machine.Release when
// the run's results have been read; pooled runs are byte-identical to
// fresh-machine runs. SetMachineReuse toggles pooling globally (it is
// on by default) and returns the previous setting.
var (
	AcquireMachine  = machine.Acquire
	SetMachineReuse = machine.SetReuse
)

// DefaultConfig returns the paper's machine parameters for a protocol
// and processor count.
func DefaultConfig(p Protocol, procs int) Config {
	return machine.DefaultConfig(p, procs)
}

// Resumable workload API: a Program is a workload compiled to the
// state-machine model, dispatched inline by the event loop (no
// goroutine per simulated processor). Each processor runs the Program's
// Step as its root activation; blocking operations return OpBlocked and
// the processor is re-entered in place when the machine wakes it.
// Machine.RunProgram runs one; a second RunProgram call on the same
// machine continues the same simulation where the first left off.
type (
	Program  = machine.Program
	Frame    = machine.Frame
	StepFunc = machine.StepFunc
	OpStatus = machine.OpStatus
)

// Step results (see Program).
const (
	OpDone    = machine.OpDone
	OpBlocked = machine.OpBlocked
	OpCalled  = machine.OpCalled
)

// MachineSnapshot is a deep, immutable copy of a quiescent machine
// taken by Machine.Snapshot after a RunProgram phase; RestoreFrom on a
// freshly built (never-run) structurally identical machine resumes the
// simulation from that point. Many machines may fork from one snapshot
// concurrently — restored continuations are byte-identical to running
// the original machine onward.
type MachineSnapshot = machine.Snapshot

// Warm-forked sweep support: the Warm*Loop drivers split a workload
// into a shared warm-up phase (snapshotted once) plus a measured rest
// phase forked per run, and WarmForkCache shares those checkpoints
// across an experiment sweep (attach one to ExperimentOptions.Forks).
type (
	LockVariant   = workload.LockVariant
	WarmForkCache = experiments.WarmForkCache
)

// Lock-loop body variants accepted by WarmLockLoop.
const (
	PlainLock   = workload.PlainLock
	RandomPause = workload.RandomPause
	WorkRatio   = workload.WorkRatio
)

// Warm-fork drivers and the sweep-level checkpoint cache.
var (
	WarmLockLoop      = workload.WarmLockLoop
	WarmBarrierLoop   = workload.WarmBarrierLoop
	WarmReductionLoop = workload.WarmReductionLoop
	NewWarmForkCache  = experiments.NewWarmForkCache
)

// Synchronization construct interfaces and implementations (Section 2 of
// the paper). MagicLock and MagicBarrier are the zero-traffic primitives
// used to isolate reduction communication.
type (
	Lock                 = constructs.Lock
	Barrier              = constructs.Barrier
	Reducer              = constructs.Reducer
	TicketLock           = constructs.TicketLock
	MCSLock              = constructs.MCSLock
	TASLock              = constructs.TASLock
	TTASLock             = constructs.TTASLock
	CentralBarrier       = constructs.CentralBarrier
	DisseminationBarrier = constructs.DisseminationBarrier
	TreeBarrier          = constructs.TreeBarrier
	ParallelReducer      = constructs.ParallelReducer
	SequentialReducer    = constructs.SequentialReducer
	MagicLock            = machine.MagicLock
	MagicBarrier         = machine.MagicBarrier
)

// NewTicketLock allocates a centralized ticket lock on m.
func NewTicketLock(m *Machine, name string) *TicketLock {
	return constructs.NewTicketLock(m, name)
}

// NewMCSLock allocates an MCS queue lock; updateConscious selects the
// paper's flush-augmented variant.
func NewMCSLock(m *Machine, name string, updateConscious bool) *MCSLock {
	return constructs.NewMCSLock(m, name, updateConscious)
}

// NewTASLock allocates a test-and-set lock with exponential backoff
// (library extension beyond the paper's candidates).
func NewTASLock(m *Machine, name string) *TASLock {
	return constructs.NewTASLock(m, name)
}

// NewTTASLock allocates a test-and-test-and-set lock (library extension
// beyond the paper's candidates).
func NewTTASLock(m *Machine, name string) *TTASLock {
	return constructs.NewTTASLock(m, name)
}

// NewCentralBarrier allocates a sense-reversing centralized barrier.
func NewCentralBarrier(m *Machine, name string) *CentralBarrier {
	return constructs.NewCentralBarrier(m, name)
}

// NewDisseminationBarrier allocates a dissemination barrier.
func NewDisseminationBarrier(m *Machine, name string) *DisseminationBarrier {
	return constructs.NewDisseminationBarrier(m, name)
}

// NewTreeBarrier allocates a 4-ary arrival-tree barrier.
func NewTreeBarrier(m *Machine, name string) *TreeBarrier {
	return constructs.NewTreeBarrier(m, name)
}

// NewParallelReducer allocates a lock-based parallel max-reducer.
func NewParallelReducer(m *Machine, name string, l Lock, b Barrier) *ParallelReducer {
	return constructs.NewParallelReducer(m, name, l, b)
}

// NewSequentialReducer allocates a combining sequential max-reducer.
func NewSequentialReducer(m *Machine, name string, b Barrier) *SequentialReducer {
	return constructs.NewSequentialReducer(m, name, b)
}

// Communication classification (Section 3.2 of the paper).
type (
	MissCounts   = classify.MissCounts
	UpdateCounts = classify.UpdateCounts
	MissKind     = classify.MissKind
	UpdateKind   = classify.UpdateKind
)

// Miss categories.
const (
	MissCold     = classify.MissCold
	MissTrue     = classify.MissTrue
	MissFalse    = classify.MissFalse
	MissEviction = classify.MissEviction
	MissDrop     = classify.MissDrop
	MissUpgrade  = classify.MissUpgrade
)

// Update-message categories.
const (
	UpdTrue          = classify.UpdTrue
	UpdFalse         = classify.UpdFalse
	UpdProliferation = classify.UpdProliferation
	UpdReplacement   = classify.UpdReplacement
	UpdTermination   = classify.UpdTermination
	UpdDrop          = classify.UpdDrop
)

// Synthetic workloads (Section 4 of the paper).
type (
	WorkloadParams  = workload.Params
	LockKind        = workload.LockKind
	BarrierKind     = workload.BarrierKind
	ReductionKind   = workload.ReductionKind
	LockResult      = workload.LockResult
	BarrierResult   = workload.BarrierResult
	ReductionResult = workload.ReductionResult
)

// Workload construct selectors (paper bar labels).
const (
	Ticket             = workload.Ticket
	MCS                = workload.MCS
	UpdateConsciousMCS = workload.UpdateConsciousMCS
	Central            = workload.Central
	Dissemination      = workload.Dissemination
	Tree               = workload.Tree
	Sequential         = workload.Sequential
	Parallel           = workload.Parallel
)

// Workload drivers.
var (
	LockLoop                = workload.LockLoop
	LockLoopRandomPause     = workload.LockLoopRandomPause
	LockLoopWorkRatio       = workload.LockLoopWorkRatio
	BarrierLoop             = workload.BarrierLoop
	ReductionLoop           = workload.ReductionLoop
	ReductionLoopImbalanced = workload.ReductionLoopImbalanced
)

// Default workload parameter builders (paper scales).
var (
	DefaultLockParams      = workload.DefaultLockParams
	DefaultBarrierParams   = workload.DefaultBarrierParams
	DefaultReductionParams = workload.DefaultReductionParams
)

// Experiment drivers regenerating the paper's figures.
type (
	ExperimentOptions = experiments.Options
	LatencySweep      = experiments.LatencySweep
	MissBreakdown     = experiments.MissBreakdown
	UpdateBreakdown   = experiments.UpdateBreakdown
)

// Experiment option presets.
var (
	PaperScale = experiments.Defaults
	QuickScale = experiments.Quick
)

// RunnerPool is the worker pool that fans independent simulations of an
// experiment sweep across OS threads; attach one to
// ExperimentOptions.Runner. Result assembly stays deterministic, so the
// rendered figures are byte-identical at any worker count.
// RunnerSnapshot is the pool's progress counter (jobs done, aggregate
// simulated cycles, wall time).
type (
	RunnerPool     = runner.Pool
	RunnerSnapshot = runner.Snapshot
)

// NewRunnerPool builds a simulation worker pool. workers <= 0 selects
// GOMAXPROCS; 1 keeps every job inline on the calling goroutine.
func NewRunnerPool(workers int) *RunnerPool { return runner.New(workers) }

// Per-figure drivers.
var (
	Figure8  = experiments.Figure8
	Figure9  = experiments.Figure9
	Figure10 = experiments.Figure10
	Figure11 = experiments.Figure11
	Figure12 = experiments.Figure12
	Figure13 = experiments.Figure13
	Figure14 = experiments.Figure14
	Figure15 = experiments.Figure15
	Figure16 = experiments.Figure16

	LockVariantRandomPause     = experiments.LockVariantRandomPause
	LockVariantWorkRatio       = experiments.LockVariantWorkRatio
	ReductionVariantImbalanced = experiments.ReductionVariantImbalanced

	AblateCUThreshold = experiments.AblateCUThreshold
	AblatePURetention = experiments.AblatePURetention
	AblateSpinModel   = experiments.AblateSpinModel

	// ExtendedLockSweep measures all five lock algorithms (including the
	// TAS/TTAS extensions) under all three protocols.
	ExtendedLockSweep = experiments.ExtendedLockSweep

	// AnalyzeLockContention reports per-node traffic concentration for
	// the centralized lock (the paper's resource-contention argument);
	// AnalyzeLockContentions runs it for several protocols through the
	// runner pool.
	AnalyzeLockContention  = experiments.AnalyzeLockContention
	AnalyzeLockContentions = experiments.AnalyzeLockContentions
)

// Trace support: attach a TraceLog to Config.Trace to record every
// processor-level operation.
type TraceLog = trace.Log

// NewTraceLog creates an operation trace ring buffer.
func NewTraceLog(capacity int) *TraceLog { return trace.NewLog(capacity) }

// Observability layer: attach a MetricsRegistry to Config.Metrics to
// collect named counters, latency/fan-out histograms, and (with a
// positive sampling interval) per-interval time series, all keyed to
// simulated time; the run's MetricsSnapshot comes back in
// Result.Metrics. Attach a MetricsTimeline to Config.Timeline to record
// per-processor state intervals for Chrome trace-event / Perfetto
// export. MetricsCollector assembles labeled snapshots into a
// MetricsReport for JSON/CSV export.
type (
	MetricsRegistry  = metrics.Registry
	MetricsSnapshot  = metrics.Snapshot
	MetricsTimeline  = metrics.Timeline
	MetricsCollector = metrics.Collector
	MetricsReport    = metrics.Report
)

// NewMetricsRegistry builds an observability registry; interval is the
// time-series sampling period in simulated cycles (0 disables series).
func NewMetricsRegistry(interval uint64) *MetricsRegistry {
	return metrics.New(interval)
}

// NewMetricsTimeline builds a timeline recorder holding at most limit
// events (<= 0 for unbounded).
func NewMetricsTimeline(limit int) *MetricsTimeline {
	return metrics.NewTimeline(limit)
}

// NewMetricsCollector builds a snapshot collector whose runs sample at
// the given interval.
func NewMetricsCollector(interval uint64) *MetricsCollector {
	return metrics.NewCollector(interval)
}

// WriteChromeTrace renders a timeline as Chrome trace-event JSON that
// chrome://tracing and Perfetto load directly.
var WriteChromeTrace = metrics.WriteChromeTrace

// Histogram names the built-in constructs record latency under.
const (
	HistLockAcquire    = constructs.HistLockAcquire
	HistBarrierEpisode = constructs.HistBarrierEpisode
	HistReduction      = constructs.HistReduction
)

// Application kernels (lock-, barrier-, and reduction-bound programs
// distilling the workload classes the paper motivates) and the
// construct-choice comparisons over them.
type (
	AppResult       = apps.Result
	WorkQueueParams = apps.WorkQueueParams
	JacobiParams    = apps.JacobiParams
	NBodyParams     = apps.NBodyParams
	AppComparison   = experiments.AppComparison
)

// Application kernel drivers and comparisons.
var (
	WorkQueue = apps.WorkQueue
	Jacobi    = apps.Jacobi
	NBodyMax  = apps.NBodyMax

	CompareWorkQueue = experiments.CompareWorkQueue
	CompareJacobi    = experiments.CompareJacobi
	CompareNBody     = experiments.CompareNBody
)
